// The unified execution substrate: one work-stealing scheduler behind
// the batch runner (job axis), the serve daemon (request queue), and the
// simulator's round chunks / setup chunks (fork-join axis).
//
// Two levels:
//   Level 1 — `submit` enqueues independent tasks onto a fixed worker
//   fleet, ordered by (priority desc, submit order asc). The batch
//   runner submits one task per job (big jobs first, at kHigh); the
//   serve daemon submits one task per heavy request.
//   Level 2 — `parallel_for` runs a fork-join over `chunks` indices:
//   the CALLER claims chunks, and every IDLE worker steals chunks from
//   the region until it drains. A big batch job (its own multi-threaded
//   RunContext) reaches this path through Scheduler::current(): the
//   simulator's round loop decomposes into ctx.num_threads chunks and
//   any worker not busy with a small job helps execute them.
//
// Determinism: the scheduler never decides WHAT work produces — only
// WHEN and WHERE it runs. Chunk decompositions are fixed by the caller
// (never by worker count or steal order) and all per-chunk output is
// keyed by chunk index and merged in chunk order, so results are
// bit-identical at every worker count, steal pattern, and threshold —
// the same contract the old SimThreadPool documented, now global.
//
// Allocation contract: the steady-state hot path (POD submit, worker
// dispatch, chunk claim/steal) performs no heap allocation once the
// per-priority task rings reached their high-water capacity;
// tests/test_perf_smoke.cpp pins that down. The std::function submit
// overload is a convenience for low-rate callers (the serve daemon) and
// may allocate at the call site.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcolor::sched {

/// Non-owning callable reference for fork-join bodies: parallel_for must
/// not allocate per region, and the region never outlives the caller's
/// stack frame, so a borrowed {object, trampoline} pair is exactly right.
class ChunkFn {
 public:
  template <typename F>
  ChunkFn(const F& f)  // NOLINT: implicit by design (lambda call sites)
      : obj_(&f), call_([](const void* o, int c) {
          (*static_cast<const F*>(o))(c);
        }) {}

  void operator()(int chunk) const { call_(obj_, chunk); }

 private:
  const void* obj_;
  void (*call_)(const void*, int);
};

/// Level-1 admission classes. Within one priority, tasks run FIFO by
/// submit order; across priorities, higher always dispatches first. The
/// batch runner submits big jobs at kHigh (longest-processing-time-first
/// keeps the fleet's makespan near optimal) and small jobs at kNormal.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr int kPriorityLevels = 3;

/// Scheduling telemetry. Everything here describes the execution
/// schedule, not the computation — steal counts, peak depths, and
/// occupancy all vary run to run, so consumers must publish them under
/// the StatsRegistry kTiming quarantine (the batch runner does); only
/// task counts fixed by the workload itself may be kStable.
struct SchedCounters {
  std::int64_t tasks = 0;        ///< level-1 tasks executed
  std::int64_t big_tasks = 0;    ///< tasks submitted with big = true
  std::int64_t chunks = 0;       ///< fork-join chunks executed (pooled path)
  std::int64_t steals = 0;       ///< chunks executed by a non-initiating thread
  std::int64_t peak_queue_depth = 0;  ///< max level-1 tasks queued at once
  std::int64_t peak_occupancy = 0;    ///< max threads executing at once
};

/// Level-1 admission options (namespace scope so it is a complete type
/// by the time Scheduler::submit's default argument needs it).
struct TaskOptions {
  Priority priority = Priority::kNormal;
  bool big = false;  ///< accounting only: counted in SchedCounters::big_tasks
};

class Scheduler {
 public:
  using TaskOptions = sched::TaskOptions;

  /// Raw task shape for the allocation-free submit path.
  using TaskFn = void (*)(void* ctx, std::int64_t arg);

  /// Spawns `workers` threads (>= 0). With zero workers the scheduler is
  /// still correct: submit runs tasks inline and parallel_for degrades to
  /// a serial loop on the caller.
  explicit Scheduler(int workers);

  /// Drains queued tasks (the TaskQueue contract: queued work still
  /// runs), then joins the workers. Destroying a scheduler while another
  /// thread is blocked in parallel_for or drain is a caller bug.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int workers() const noexcept { return workers_; }

  /// Level 1, hot path: enqueues fn(ctx, arg). No allocation once the
  /// priority ring is warm. Tasks must not throw (wrap and capture).
  void submit(TaskFn fn, void* ctx, std::int64_t arg,
              TaskOptions opts = TaskOptions());

  /// Level 1, convenience: owning submit for low-rate callers.
  void submit(std::function<void()> task, TaskOptions opts = TaskOptions());

  /// Blocks until every task submitted so far has finished. (Fork-join
  /// regions need no drain — parallel_for already blocks its initiator.)
  void drain();

  /// Level 2: runs fn(0) .. fn(chunks - 1); returns when all are done.
  /// The calling thread participates and idle workers steal chunks, so
  /// this is safe (and useful) both from outside the fleet and from
  /// inside a level-1 task — a nested region just shows up as one more
  /// steal source. chunks <= 1 or a worker-less scheduler runs inline.
  /// Bodies must not throw (same contract as tasks).
  void parallel_for(int chunks, ChunkFn fn);

  /// Snapshot of the telemetry counters (mutex-consistent).
  SchedCounters counters() const;

  /// The scheduler whose worker is executing the current thread's task
  /// or chunk; nullptr on non-fleet threads. This is the level-1 →
  /// level-2 bridge: the simulator and parallel_chunks route their
  /// fork-joins through the ambient scheduler when present, so a big
  /// job's rounds are stolen by whatever workers are idle instead of
  /// spinning up a private pool per job.
  static Scheduler* current() noexcept;

 private:
  struct Task {
    TaskFn fn;
    void* ctx;
    std::int64_t arg;
  };

  /// Growable FIFO ring (head index + size over a power-of-two vector):
  /// unlike std::deque it never releases blocks, so a warm ring admits
  /// and pops tasks with zero allocation.
  struct TaskRing {
    std::vector<Task> slots;
    std::size_t head = 0;
    std::size_t count = 0;

    bool empty() const noexcept { return count == 0; }
    void push(const Task& t);
    Task pop();
  };

  /// One fork-join in flight, linked into the scheduler's active list
  /// for the duration of its parallel_for call (stack lifetime). Claims
  /// and completion are guarded by the scheduler mutex — claiming under
  /// the lock is what makes "initiator deregisters after completed ==
  /// chunks" safe against a worker holding a stale region pointer.
  struct Region {
    ChunkFn fn;
    int chunks;
    int next = 0;       ///< first unclaimed chunk
    int completed = 0;  ///< chunks finished
    Region* prev = nullptr;
    Region* next_region = nullptr;

    Region(ChunkFn f, int c) : fn(f), chunks(c) {}
  };

  void worker_loop();
  /// Claims and runs chunks of `r` until none are left. Called (and
  /// returns) with `lock` held; unlocks around each body execution.
  void work_region(std::unique_lock<std::mutex>& lock, Region& r,
                   bool initiator);
  Region* claimable_region_locked() const noexcept;
  bool task_available_locked() const noexcept;
  Task pop_task_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  TaskRing queues_[kPriorityLevels];
  std::size_t queued_ = 0;   ///< total tasks across all priority rings
  Region* regions_ = nullptr;  ///< active fork-join regions (oldest first)
  Region* regions_tail_ = nullptr;
  int busy_tasks_ = 0;  ///< level-1 tasks currently executing
  int active_ = 0;      ///< threads currently executing a task or chunk
  int workers_ = 0;
  bool stop_ = false;
  SchedCounters counters_;
};

}  // namespace dcolor::sched
