// Messages with explicit bit accounting.
//
// CONGEST bounds are about message *width*, so every field appended to a
// Message declares the number of bits it semantically needs (e.g. a color
// from a space of size C costs ceil(log2 C) bits). The simulator tracks
// the declared widths; tests assert algorithms stay within their stated
// budgets (e.g. O(log q + log C) for Theorem 1.2).
//
// Storage: the first `kInlineFields` fields live inline in the Message
// object, which covers every message the core programs send (tag + a
// couple of colors). Only wider messages (e.g. Phase-I sets with large p)
// spill to the heap, so per-message allocation is off the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace dcolor {

class Message {
 public:
  /// Fields stored inline before spilling to the heap.
  static constexpr std::size_t kInlineFields = 4;

  Message() = default;
  Message(Message&&) noexcept = default;
  Message& operator=(Message&&) noexcept = default;
  Message(const Message& o)
      : inline_(o.inline_),
        count_(o.count_),
        bits_(o.bits_),
        overflow_(o.overflow_ == nullptr
                      ? nullptr
                      : std::make_unique<std::vector<std::int64_t>>(
                            *o.overflow_)) {}
  Message& operator=(const Message& o) {
    if (this != &o) *this = Message(o);
    return *this;
  }

  /// Appends a field of `bits` declared width. `value` must fit in `bits`
  /// bits (two's complement for negatives is not supported; values are
  /// non-negative).
  void push(std::int64_t value, int bits);

  /// Sequential read access (fields in push order).
  std::int64_t field(std::size_t i) const;
  std::size_t num_fields() const noexcept { return count_; }

  /// Total declared width of the message in bits.
  int bits() const noexcept { return bits_; }

  bool empty() const noexcept { return count_ == 0; }

 private:
  std::array<std::int64_t, kInlineFields> inline_{};
  std::uint32_t count_ = 0;
  int bits_ = 0;
  /// Fields beyond kInlineFields. A heap pointer rather than an inline
  /// vector: it is null for every message the core programs send, and the
  /// 16 bytes saved per Message are paid on every envelope the delivery
  /// pass copies.
  std::unique_ptr<std::vector<std::int64_t>> overflow_;
};

/// A received message together with its sender.
struct Envelope {
  std::int32_t from;
  Message message;
};

}  // namespace dcolor
