// Messages with explicit bit accounting.
//
// CONGEST bounds are about message *width*, so every field appended to a
// Message declares the number of bits it semantically needs (e.g. a color
// from a space of size C costs ceil(log2 C) bits). The simulator tracks
// the declared widths; tests assert algorithms stay within their stated
// budgets (e.g. O(log q + log C) for Theorem 1.2).
#pragma once

#include <cstdint>
#include <vector>

namespace dcolor {

class Message {
 public:
  Message() = default;

  /// Appends a field of `bits` declared width. `value` must fit in `bits`
  /// bits (two's complement for negatives is not supported; values are
  /// non-negative).
  void push(std::int64_t value, int bits);

  /// Sequential read access (fields in push order).
  std::int64_t field(std::size_t i) const;
  std::size_t num_fields() const noexcept { return fields_.size(); }

  /// Total declared width of the message in bits.
  int bits() const noexcept { return bits_; }

  bool empty() const noexcept { return fields_.empty(); }

 private:
  std::vector<std::int64_t> fields_;
  int bits_ = 0;
};

/// A received message together with its sender.
struct Envelope {
  std::int32_t from;
  Message message;
};

}  // namespace dcolor
