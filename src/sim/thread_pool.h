// Back-compat facades over the unified scheduler (sim/scheduler.h).
//
// SimThreadPool (fork-join round chunks) and TaskQueue (the serve
// daemon's FIFO) used to be two separate worker-pool implementations;
// both are now thin header-only adapters over sched::Scheduler — the
// fork-join shape maps to parallel_for, the FIFO shape to submit/drain.
// The simulator, the batch runner, and the daemon all hold a Scheduler
// directly; these facades exist for external callers written against
// the old names and to document the shape equivalence in code.
#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.h"

namespace dcolor::detail {

/// Fork-join facade: `run(jobs, f)` executes f(0) .. f(jobs - 1) across
/// the fleet and blocks the caller, which participates — `threads`
/// total claimants, exactly the old SimThreadPool contract (chunks
/// claimed in order, any thread may execute any chunk, determinism from
/// merge-by-chunk-index).
class SimThreadPool {
 public:
  explicit SimThreadPool(int threads)
      : scheduler_(threads > 1 ? threads - 1 : 0) {}

  int threads() const noexcept { return scheduler_.workers() + 1; }

  void run(int jobs, const std::function<void(int)>& job) {
    scheduler_.parallel_for(jobs, job);
  }

 private:
  sched::Scheduler scheduler_;
};

/// FIFO facade: `submit` enqueues and returns, `drain` blocks until the
/// queue empties, destruction drains — the old TaskQueue contract, now
/// expressed as level-1 scheduler tasks at default priority.
class TaskQueue {
 public:
  explicit TaskQueue(int threads) : scheduler_(threads < 1 ? 1 : threads) {}

  int threads() const noexcept { return scheduler_.workers(); }

  void submit(std::function<void()> task) {
    scheduler_.submit(std::move(task));
  }

  void drain() { scheduler_.drain(); }

 private:
  sched::Scheduler scheduler_;
};

}  // namespace dcolor::detail
