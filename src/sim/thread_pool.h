// A tiny persistent worker pool for the simulator's parallel rounds,
// plus a FIFO task queue for asynchronous work (the serve daemon).
//
// The pool runs `job(chunk)` for chunk = 0..jobs-1 and blocks the caller
// until every chunk finished. Chunks are claimed from an atomic counter,
// so any worker may execute any chunk — determinism comes from the caller
// keying all per-chunk output buffers by chunk index and merging them in
// chunk order, never from the execution schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcolor::detail {

class SimThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in
  /// every `run`, so `threads` chunks execute concurrently).
  explicit SimThreadPool(int threads);
  ~SimThreadPool();

  SimThreadPool(const SimThreadPool&) = delete;
  SimThreadPool& operator=(const SimThreadPool&) = delete;

  int threads() const noexcept { return workers_ + 1; }

  /// Executes job(0) .. job(jobs - 1) across the pool; returns when all
  /// are done. Exceptions thrown by `job` must be captured by the caller
  /// inside `job` itself (the pool treats jobs as noexcept).
  void run(int jobs, const std::function<void(int)>& job);

 private:
  void worker_loop();
  void work_off(const std::function<void(int)>& job, int jobs,
                std::uint64_t my_gen);

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  int jobs_ = 0;
  int next_chunk_ = 0;
  int in_flight_ = 0;        ///< chunks claimed but not finished
  std::uint64_t generation_ = 0;
  int workers_ = 0;
  bool stop_ = false;
};

/// FIFO queue of independent tasks over a fixed set of worker threads.
///
/// SimThreadPool is fork-join: `run` blocks the caller until the batch
/// drains, which is exactly wrong for a daemon that must keep accepting
/// requests while earlier ones execute. TaskQueue is the complementary
/// shape — `submit` enqueues and returns immediately; completion is the
/// caller's business (wrap the task in a std::packaged_task and keep the
/// future). Tasks must not throw (wrap and capture, same contract as
/// SimThreadPool jobs). Destruction drains: queued tasks still run, then
/// the workers exit.
class TaskQueue {
 public:
  explicit TaskQueue(int threads);
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  int threads() const noexcept { return static_cast<int>(threads_.size()); }

  /// Enqueues a task; some worker runs it in FIFO order.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void drain();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int running_ = 0;  ///< tasks currently executing
  bool stop_ = false;
};

}  // namespace dcolor::detail
