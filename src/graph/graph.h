// Undirected simple graphs in compressed sparse row form.
//
// This is the network topology type for the whole library: the simulator,
// the coloring algorithms and the experiment harness all operate on
// `Graph` (plus an `Orientation` when the instance is edge-oriented).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/storage_vec.h"

namespace dcolor {

/// Node identifier; graphs are laptop-scale so 32 bits suffice.
using NodeId = std::int32_t;

/// Colors can come from quadratically-blown-up spaces (e.g. Linial's
/// intermediate colorings), so they are 64-bit.
using Color = std::int64_t;

/// Sentinel for "not yet colored".
inline constexpr Color kNoColor = -1;

/// An undirected simple graph (no self-loops, no parallel edges), stored
/// as CSR with sorted neighbor lists. Immutable after construction.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; duplicate edges and self-loops are dropped.
  static Graph from_edges(NodeId num_nodes,
                          std::vector<std::pair<NodeId, NodeId>> edges);

  NodeId num_nodes() const noexcept { return n_; }
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(adj_.size()) / 2;
  }

  int degree(NodeId v) const noexcept {
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adj_.data() + offsets_[static_cast<std::size_t>(v)],
            adj_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Maximum degree; the paper's Δ(G) is max(2, max degree) — see
  /// `delta_paper` for that convention.
  int max_degree() const noexcept;

  /// Δ(G) as defined in the paper's Section 2: max{2, max degree}.
  int delta_paper() const noexcept;

  /// All edges as (u, v) with u < v.
  std::vector<std::pair<NodeId, NodeId>> edge_list() const;

  /// Subgraph induced by `nodes`. Returns the subgraph plus the mapping
  /// original-id -> subgraph-id (-1 for nodes not included).
  struct Induced;
  Induced induced_subgraph(const std::vector<NodeId>& nodes) const;

  /// Subgraph on the same node set keeping only edges where `keep` is true.
  Graph edge_subgraph(
      const std::vector<std::pair<NodeId, NodeId>>& kept_edges) const;

  /// Subgraph on the same node set keeping exactly the edges the predicate
  /// accepts. `keep(u, v)` must be symmetric (keep(u, v) == keep(v, u)) —
  /// it is evaluated once per directed arc. Unlike edge_subgraph, this
  /// never materializes an edge list and never re-sorts: it filters the
  /// (already sorted) adjacency arrays in two CSR passes, so it is the
  /// right tool when the kept set is a large fraction of a large graph.
  template <class Pred>
  Graph edge_subgraph_if(Pred&& keep) const {
    Graph s;
    s.n_ = n_;
    const auto n = static_cast<std::size_t>(n_);
    s.offsets_.assign(n + 1, 0);
    for (NodeId u = 0; u < n_; ++u) {
      std::int64_t cnt = 0;
      for (const NodeId v : neighbors(u)) cnt += keep(u, v) ? 1 : 0;
      s.offsets_[static_cast<std::size_t>(u) + 1] =
          s.offsets_[static_cast<std::size_t>(u)] + cnt;
    }
    s.adj_.resize(static_cast<std::size_t>(s.offsets_[n]));
    std::int64_t w = 0;
    for (NodeId u = 0; u < n_; ++u) {
      for (const NodeId v : neighbors(u)) {
        if (keep(u, v)) s.adj_[static_cast<std::size_t>(w++)] = v;
      }
    }
    return s;
  }

  /// Human-readable one-line summary for logs.
  std::string summary() const;

  // ---- storage seam (snapshot serialization) ---------------------------

  /// Raw CSR arrays; byte-comparable across builds of the same edge set.
  std::span<const std::int64_t> raw_offsets() const noexcept {
    return {offsets_.data(), offsets_.size()};
  }
  std::span<const NodeId> raw_adjacency() const noexcept {
    return {adj_.data(), adj_.size()};
  }

  /// Builds a graph that *borrows* prebuilt CSR arrays (e.g. sections of a
  /// memory-mapped snapshot) zero-copy. The caller keeps the spans alive
  /// for the graph's lifetime. Validates the CSR invariants (monotone
  /// offsets, in-range neighbor ids) in one O(n) + O(m) pass — cheap
  /// relative to mapping, and the only line of defense against a
  /// hand-corrupted payload.
  static Graph adopt(NodeId num_nodes, std::span<const std::int64_t> offsets,
                     std::span<const NodeId> adj);

  /// True when the CSR arrays are borrowed (mmap-backed) rather than owned.
  bool borrowed() const noexcept { return adj_.borrowed(); }

  /// Builds an OWNING graph from prebuilt CSR arrays (same validation as
  /// `adopt`). This is how a mapped snapshot graph is materialized back
  /// onto the heap when the caller needs the graph to outlive the mapping.
  static Graph from_csr(std::vector<std::int64_t> offsets,
                        std::vector<NodeId> adj);

 private:
  NodeId n_ = 0;
  StorageVec<std::int64_t> offsets_;  // size n_+1
  StorageVec<NodeId> adj_;
};

struct Graph::Induced {
  Graph graph;
  std::vector<NodeId> to_sub;   ///< original id -> sub id or -1
  std::vector<NodeId> to_orig;  ///< sub id -> original id
};

}  // namespace dcolor
