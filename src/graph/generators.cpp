#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "sim/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dcolor {

namespace {

/// Nodes per parallel generation chunk. Fixed (never derived from the
/// thread count); per-node/-row randomness comes from counter-based
/// streams, so output is identical for every thread count and chunking —
/// per-chunk edge buffers merged in chunk order yield row-major edges.
constexpr NodeId kGenChunkNodes = 8192;

/// Runs body(begin, end, chunk_index) over fixed-size node ranges and
/// returns the number of chunks.
template <typename Body>
int for_node_chunks(NodeId n, const Body& body) {
  const int num_chunks =
      static_cast<int>((static_cast<std::int64_t>(n) + kGenChunkNodes - 1) /
                       kGenChunkNodes);
  parallel_chunks(num_chunks, default_setup_threads(), [&](int c) {
    const NodeId begin = static_cast<NodeId>(c) * kGenChunkNodes;
    const NodeId end = std::min<NodeId>(n, begin + kGenChunkNodes);
    body(begin, end, c);
  });
  return num_chunks;
}

/// Concatenates per-chunk edge buffers in chunk order.
std::vector<std::pair<NodeId, NodeId>> merge_chunk_edges(
    std::vector<std::vector<std::pair<NodeId, NodeId>>>& per_chunk) {
  std::size_t total = 0;
  for (const auto& v : per_chunk) total += v.size();
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(total);
  for (auto& v : per_chunk)
    edges.insert(edges.end(), v.begin(), v.end());
  return edges;
}

}  // namespace

Graph gnp(NodeId n, double p, Rng& rng) {
  DCOLOR_CHECK(n >= 0);
  DCOLOR_CHECK(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return complete(n);
  if (p <= 0.0 || n < 2) return Graph::from_edges(n, {});
  PhaseSpan span("setup:gnp");
  // Geometric skipping within each row u over partners v in (u, n) —
  // O(m + n) draws total; row u uses its own counter-based stream, so the
  // edge set is independent of the thread count and chunking.
  const double log1mp = std::log1p(-p);
  const std::uint64_t base = rng();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> per_chunk(
      static_cast<std::size_t>((static_cast<std::int64_t>(n) +
                                kGenChunkNodes - 1) /
                               kGenChunkNodes));
  for_node_chunks(n, [&](NodeId begin, NodeId end, int c) {
    auto& edges = per_chunk[static_cast<std::size_t>(c)];
    for (NodeId u = begin; u < end; ++u) {
      Rng r = Rng::stream(base, static_cast<std::uint64_t>(u));
      std::int64_t v = u;
      while (true) {
        const double x = std::max(r.uniform(), 1e-300);
        v += 1 + static_cast<std::int64_t>(std::floor(std::log(x) / log1mp));
        if (v >= n) break;
        edges.emplace_back(u, static_cast<NodeId>(v));
      }
    }
  });
  return Graph::from_edges(n, merge_chunk_edges(per_chunk));
}

Graph gnp_avg_degree(NodeId n, double avg_degree, Rng& rng) {
  DCOLOR_CHECK(n >= 2);
  const double p = std::min(1.0, avg_degree / static_cast<double>(n - 1));
  return gnp(n, p, rng);
}

Graph random_near_regular(NodeId n, int d, Rng& rng) {
  DCOLOR_CHECK(n >= 0 && d >= 0);
  // A simple graph caps degrees at n-1; the contract is "degrees <= d",
  // so larger d just saturates (and n <= 1 yields an edgeless graph)
  // instead of rejecting tiny instances.
  d = std::min(d, static_cast<int>(std::max<NodeId>(n, 1) - 1));
  PhaseSpan span("setup:random_near_regular");
  // Configuration model: d stubs per node, random perfect matching of
  // stubs, then drop loops/multi-edges. The matching is realized by
  // sorting stubs on independent per-stub random keys (a shuffle whose
  // result depends only on the seed, not on draw order), so key
  // generation parallelizes over fixed chunks.
  std::size_t num_stubs =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(d);
  if (num_stubs % 2 == 1) --num_stubs;
  const std::uint64_t base = rng();
  struct Keyed {
    std::uint64_t key;
    NodeId stub_node;
  };
  std::vector<Keyed> stubs(num_stubs);
  if (d > 0) {
    const auto stub_chunks = static_cast<int>(
        (num_stubs + static_cast<std::size_t>(kGenChunkNodes) - 1) /
        static_cast<std::size_t>(kGenChunkNodes));
    parallel_chunks(stub_chunks, default_setup_threads(), [&](int c) {
      const std::size_t begin =
          static_cast<std::size_t>(c) * static_cast<std::size_t>(kGenChunkNodes);
      const std::size_t end = std::min(
          num_stubs, begin + static_cast<std::size_t>(kGenChunkNodes));
      for (std::size_t i = begin; i < end; ++i) {
        std::uint64_t s = base ^ (0x632BE59BD9B4E019ULL * (i + 1));
        stubs[i] = {splitmix64(s), static_cast<NodeId>(i / d)};
      }
    });
  }
  std::sort(stubs.begin(), stubs.end(), [](const Keyed& a, const Keyed& b) {
    return a.key != b.key ? a.key < b.key
                          : a.stub_node < b.stub_node;  // tie: stable
  });
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_stubs / 2);
  for (std::size_t i = 0; i + 1 < num_stubs; i += 2)
    edges.emplace_back(stubs[i].stub_node, stubs[i + 1].stub_node);
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle(NodeId n) {
  DCOLOR_CHECK(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, std::move(edges));
}

Graph path(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, std::move(edges));
}

Graph complete(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(a) * static_cast<std::size_t>(b));
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  return Graph::from_edges(a + b, std::move(edges));
}

Graph grid(NodeId rows, NodeId cols) {
  DCOLOR_CHECK(rows >= 1 && cols >= 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph hypercube(int dims) {
  DCOLOR_CHECK(dims >= 0 && dims < 25);
  const NodeId n = static_cast<NodeId>(1) << dims;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      const NodeId u = v ^ (static_cast<NodeId>(1) << b);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_tree(NodeId n, Rng& rng) {
  DCOLOR_CHECK(n >= 0);
  if (n <= 1) return Graph::from_edges(n, {});
  if (n == 2) return Graph::from_edges(2, {{0, 1}});
  PhaseSpan span("setup:random_tree");
  // Prüfer sequence decoding. Sequence entries come from per-entry
  // counter-based streams (parallel, thread-count-independent); the
  // decode itself is inherently sequential.
  const std::uint64_t base = rng();
  std::vector<NodeId> pruefer(static_cast<std::size_t>(n - 2));
  for_node_chunks(n - 2, [&](NodeId begin, NodeId end, int) {
    for (NodeId i = begin; i < end; ++i) {
      Rng r = Rng::stream(base, static_cast<std::uint64_t>(i));
      pruefer[static_cast<std::size_t>(i)] =
          static_cast<NodeId>(r.below(static_cast<std::uint64_t>(n)));
    }
  });
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : pruefer) ++deg[static_cast<std::size_t>(x)];
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  NodeId leaf_ptr = 0;
  auto next_leaf = [&]() {
    while (deg[static_cast<std::size_t>(leaf_ptr)] != 1 ||
           used[static_cast<std::size_t>(leaf_ptr)])
      ++leaf_ptr;
    return leaf_ptr;
  };
  NodeId leaf = next_leaf();
  for (NodeId x : pruefer) {
    edges.emplace_back(leaf, x);
    used[static_cast<std::size_t>(leaf)] = true;
    if (--deg[static_cast<std::size_t>(x)] == 1 && x < leaf_ptr) {
      leaf = x;  // x became a leaf smaller than the scan pointer
    } else {
      leaf = next_leaf();
    }
  }
  // Connect the two remaining degree-1 nodes.
  NodeId a = -1, b = -1;
  for (NodeId v = 0; v < n; ++v) {
    if (!used[static_cast<std::size_t>(v)] &&
        deg[static_cast<std::size_t>(v)] == 1) {
      (a < 0 ? a : b) = v;
    }
  }
  edges.emplace_back(a, b);
  return Graph::from_edges(n, std::move(edges));
}

Graph disjoint_cliques(NodeId count, NodeId size) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId c = 0; c < count; ++c) {
    const NodeId base = c * size;
    for (NodeId u = 0; u < size; ++u)
      for (NodeId v = u + 1; v < size; ++v)
        edges.emplace_back(base + u, base + v);
  }
  return Graph::from_edges(count * size, std::move(edges));
}

Graph clique_chain(NodeId count, NodeId size) {
  DCOLOR_CHECK(size >= 2);
  // Clique i spans nodes [i*(size-1), i*(size-1)+size).
  const NodeId n = count * (size - 1) + 1;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId c = 0; c < count; ++c) {
    const NodeId base = c * (size - 1);
    for (NodeId u = 0; u < size; ++u)
      for (NodeId v = u + 1; v < size; ++v)
        edges.emplace_back(base + u, base + v);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle_power(NodeId n, int k) {
  DCOLOR_CHECK(n >= 3 && k >= 1);
  DCOLOR_CHECK_MSG(2 * k < n, "cycle_power needs 2k < n");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i)
    for (int d = 1; d <= k; ++d)
      edges.emplace_back(i, static_cast<NodeId>((i + d) % n));
  return Graph::from_edges(n, std::move(edges));
}

Graph random_clique_cover(NodeId n, NodeId clique_size, int cliques_per_node,
                          Rng& rng) {
  DCOLOR_CHECK(clique_size >= 2 && cliques_per_node >= 1);
  const std::int64_t num_cliques =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(n) *
                                    cliques_per_node / clique_size);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::int64_t c = 0; c < num_cliques; ++c) {
    const auto members = rng.sample_without_replacement(
        static_cast<std::uint64_t>(n),
        std::min<std::uint64_t>(static_cast<std::uint64_t>(clique_size),
                                static_cast<std::uint64_t>(n)));
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        edges.emplace_back(static_cast<NodeId>(members[i]),
                           static_cast<NodeId>(members[j]));
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_geometric(NodeId n, double radius, Rng& rng,
                       std::vector<std::pair<double, double>>* out_xy) {
  DCOLOR_CHECK(radius > 0.0);
  PhaseSpan span("setup:random_geometric");
  const std::uint64_t base = rng();
  std::vector<std::pair<double, double>> xy(static_cast<std::size_t>(n));
  for_node_chunks(n, [&](NodeId begin, NodeId end, int) {
    for (NodeId v = begin; v < end; ++v) {
      Rng r = Rng::stream(base, static_cast<std::uint64_t>(v));
      auto& [x, y] = xy[static_cast<std::size_t>(v)];
      x = r.uniform();
      y = r.uniform();
    }
  });
  // Grid hashing: only compare points in neighboring cells.
  const double cell = radius;
  const auto cells = static_cast<std::int64_t>(1.0 / cell) + 1;
  std::vector<std::vector<NodeId>> grid_buckets(
      static_cast<std::size_t>(cells * cells));
  auto bucket_of = [&](double x, double y) {
    const auto cx = std::min<std::int64_t>(
        cells - 1, static_cast<std::int64_t>(x / cell));
    const auto cy = std::min<std::int64_t>(
        cells - 1, static_cast<std::int64_t>(y / cell));
    return static_cast<std::size_t>(cx * cells + cy);
  };
  for (NodeId v = 0; v < n; ++v) {
    grid_buckets[bucket_of(xy[static_cast<std::size_t>(v)].first,
                           xy[static_cast<std::size_t>(v)].second)]
        .push_back(v);
  }
  const double r2 = radius * radius;
  // Distance tests read only xy/grid_buckets; per-chunk edge buffers are
  // merged in chunk order (row-major, thread-count-independent).
  std::vector<std::vector<std::pair<NodeId, NodeId>>> per_chunk(
      static_cast<std::size_t>((static_cast<std::int64_t>(n) +
                                kGenChunkNodes - 1) /
                               kGenChunkNodes));
  for_node_chunks(n, [&](NodeId begin, NodeId end, int c) {
    auto& edges = per_chunk[static_cast<std::size_t>(c)];
    for (NodeId v = begin; v < end; ++v) {
      const auto [vx, vy] = xy[static_cast<std::size_t>(v)];
      const auto cx = std::min<std::int64_t>(
          cells - 1, static_cast<std::int64_t>(vx / cell));
      const auto cy = std::min<std::int64_t>(
          cells - 1, static_cast<std::int64_t>(vy / cell));
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          const std::int64_t bx = cx + dx, by = cy + dy;
          if (bx < 0 || by < 0 || bx >= cells || by >= cells) continue;
          for (NodeId u :
               grid_buckets[static_cast<std::size_t>(bx * cells + by)]) {
            if (u <= v) continue;
            const auto [ux, uy] = xy[static_cast<std::size_t>(u)];
            const double ddx = vx - ux, ddy = vy - uy;
            if (ddx * ddx + ddy * ddy <= r2) edges.emplace_back(v, u);
          }
        }
      }
    }
  });
  if (out_xy != nullptr) *out_xy = std::move(xy);
  return Graph::from_edges(n, merge_chunk_edges(per_chunk));
}

}  // namespace dcolor
