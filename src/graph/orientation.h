// Edge orientations of an undirected graph.
//
// Oriented list defective coloring (OLDC) instances take the orientation as
// *input*; arbdefective algorithms produce one as *output*. An Orientation
// is always tied to the Graph it was built from (same node ids).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "storage/storage_vec.h"

namespace dcolor {

class Rng;

class Orientation {
 public:
  Orientation() = default;

  /// Orients every edge {u,v} from the endpoint with larger priority to the
  /// endpoint with smaller priority (ties broken toward the smaller id).
  /// "Oriented toward earlier nodes" in the paper's sweeps corresponds to
  /// priority = sweep position.
  static Orientation by_priority(const Graph& g,
                                 std::span<const std::int64_t> priority);

  /// Orients each edge {u,v} toward the smaller id (u -> v iff v < u).
  static Orientation by_id(const Graph& g);

  /// Uniformly random orientation.
  static Orientation random(const Graph& g, Rng& rng);

  /// Degeneracy orientation: repeatedly removes a minimum-degree node;
  /// each node's outneighbors are the neighbors removed after it.
  /// Guarantees max outdegree == degeneracy(G) <= Δ.
  static Orientation degeneracy(const Graph& g);

  /// Builds from an explicit directed arc predicate: out(u, v) must be true
  /// for exactly one direction of every edge.
  static Orientation from_predicate(
      const Graph& g, const std::function<bool(NodeId, NodeId)>& u_to_v);

  /// Restriction of `full` (an orientation of a supergraph with the same
  /// node ids) to the edges of `sub`: every edge of `sub` keeps the
  /// direction `full` gave it. Built by merge-intersecting each node's
  /// (sorted) sub-adjacency with its (sorted) full arc lists — no
  /// predicate calls, no binary searches, no re-sorts — so restricting a
  /// large graph costs one linear pass over the two adjacency structures.
  static Orientation induced(const Graph& sub, const Orientation& full);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(out_offsets_.empty()
                                   ? 0
                                   : out_offsets_.size() - 1);
  }

  std::span<const NodeId> out_neighbors(NodeId v) const noexcept {
    return {out_adj_.data() + out_offsets_[static_cast<std::size_t>(v)],
            out_adj_.data() + out_offsets_[static_cast<std::size_t>(v) + 1]};
  }
  std::span<const NodeId> in_neighbors(NodeId v) const noexcept {
    return {in_adj_.data() + in_offsets_[static_cast<std::size_t>(v)],
            in_adj_.data() + in_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  int outdegree(NodeId v) const noexcept {
    return static_cast<int>(out_offsets_[static_cast<std::size_t>(v) + 1] -
                            out_offsets_[static_cast<std::size_t>(v)]);
  }

  /// β_v per the paper's convention: max(1, outdegree).
  int beta_v(NodeId v) const noexcept { return std::max(1, outdegree(v)); }

  /// β(G) = max_v β_v (>= 1 by convention).
  int beta() const noexcept;

  bool is_out_edge(NodeId u, NodeId v) const noexcept;

  // ---- storage seam (snapshot serialization) ---------------------------

  /// Raw CSR arrays; byte-comparable across builds of the same arc set.
  std::span<const std::int64_t> raw_out_offsets() const noexcept {
    return {out_offsets_.data(), out_offsets_.size()};
  }
  std::span<const NodeId> raw_out_adj() const noexcept {
    return {out_adj_.data(), out_adj_.size()};
  }
  std::span<const std::int64_t> raw_in_offsets() const noexcept {
    return {in_offsets_.data(), in_offsets_.size()};
  }
  std::span<const NodeId> raw_in_adj() const noexcept {
    return {in_adj_.data(), in_adj_.size()};
  }

  /// Builds an orientation that *borrows* prebuilt CSR arc arrays (e.g.
  /// sections of a memory-mapped snapshot) zero-copy. The caller keeps the
  /// spans alive for the orientation's lifetime. Validates monotonicity
  /// and size consistency; deep arc validation (every arc is a graph edge)
  /// is the snapshot verifier's job.
  static Orientation adopt(std::span<const std::int64_t> out_offsets,
                           std::span<const NodeId> out_adj,
                           std::span<const std::int64_t> in_offsets,
                           std::span<const NodeId> in_adj);

  /// A zero-copy borrowed view of this orientation: shares the CSR arrays
  /// (this object must outlive the view). Lets many batch jobs carry
  /// value-type Orientations over one cached instance without copying
  /// megabytes of arcs per job.
  Orientation borrow() const noexcept;

  /// True when the CSR arrays are borrowed rather than owned.
  bool borrowed() const noexcept { return out_adj_.borrowed(); }

 private:
  /// Builds the CSR arrays from per-node arc lists (construction helper).
  static Orientation from_lists(std::vector<std::vector<NodeId>> out,
                                std::vector<std::vector<NodeId>> in);

  // CSR layout, mirroring Graph: `is_out_edge` and the ingest loops of the
  // coloring programs hit these on every received message, and one flat
  // array costs one cache miss where a vector-of-vectors costs two.
  StorageVec<std::int64_t> out_offsets_;  // size n+1
  StorageVec<NodeId> out_adj_;
  StorageVec<std::int64_t> in_offsets_;   // size n+1
  StorageVec<NodeId> in_adj_;
};

}  // namespace dcolor
