// Line graph constructions.
//
// `line_graph(Hypergraph)` is the bridge between edge coloring and vertex
// coloring: a proper vertex coloring of L(H) is a proper edge coloring of
// H, and L(H) has neighborhood independence θ <= rank(H).
#pragma once

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace dcolor {

/// Line graph of a hypergraph: node i = hyperedge i; adjacency iff the
/// hyperedges intersect.
Graph line_graph(const Hypergraph& h);

/// Line graph of a graph (θ <= 2). Node i corresponds to edge_list()[i].
Graph line_graph(const Graph& g);

}  // namespace dcolor
