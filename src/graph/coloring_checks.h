// Validation of colorings: properness, defects, orientation defects.
//
// Every algorithm in the library is checked against these predicates in
// the test suite and the experiment harness; nothing is trusted on the
// word of its own bookkeeping.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"

namespace dcolor {

/// True iff every node is colored (!= kNoColor) and no edge is
/// monochromatic.
bool is_proper_coloring(const Graph& g, const std::vector<Color>& colors);

/// Per-node count of same-colored neighbors (undirected defect).
/// Uncolored nodes get defect 0 and never conflict.
std::vector<int> undirected_defects(const Graph& g,
                                    const std::vector<Color>& colors);

/// Per-node count of same-colored OUT-neighbors under `o` (oriented /
/// arbdefective defect).
std::vector<int> oriented_defects(const Orientation& o,
                                  const std::vector<Color>& colors);

/// Max entry of undirected_defects.
int max_undirected_defect(const Graph& g, const std::vector<Color>& colors);

/// Max entry of oriented_defects.
int max_oriented_defect(const Orientation& o, const std::vector<Color>& colors);

/// Number of distinct colors used (ignoring kNoColor).
std::int64_t num_colors_used(const std::vector<Color>& colors);

/// True iff every node has a color != kNoColor.
bool all_colored(const std::vector<Color>& colors);

}  // namespace dcolor
