#include "graph/hypergraph.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace dcolor {

Hypergraph::Hypergraph(NodeId num_vertices,
                       std::vector<std::vector<NodeId>> edges)
    : n_(num_vertices), edges_(std::move(edges)) {
  for (auto& e : edges_) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    DCOLOR_CHECK(!e.empty());
    DCOLOR_CHECK_MSG(e.front() >= 0 && e.back() < n_,
                     "hyperedge vertex out of range");
  }
}

int Hypergraph::rank() const noexcept {
  std::size_t r = 0;
  for (const auto& e : edges_) r = std::max(r, e.size());
  return static_cast<int>(r);
}

int Hypergraph::max_vertex_degree() const noexcept {
  std::vector<int> deg(static_cast<std::size_t>(n_), 0);
  int best = 0;
  for (const auto& e : edges_) {
    for (NodeId v : e) best = std::max(best, ++deg[static_cast<std::size_t>(v)]);
  }
  return best;
}

Hypergraph random_hypergraph(NodeId num_vertices, std::int64_t num_edges,
                             int rank, Rng& rng) {
  DCOLOR_CHECK(rank >= 1 && rank <= num_vertices);
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (std::int64_t i = 0; i < num_edges; ++i) {
    const auto sample = rng.sample_without_replacement(
        static_cast<std::uint64_t>(num_vertices),
        static_cast<std::uint64_t>(rank));
    std::vector<NodeId> e;
    e.reserve(sample.size());
    for (auto v : sample) e.push_back(static_cast<NodeId>(v));
    edges.push_back(std::move(e));
  }
  return {num_vertices, std::move(edges)};
}

Hypergraph from_graph(const Graph& g) {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& [u, v] : g.edge_list()) edges.push_back({u, v});
  return {g.num_nodes(), std::move(edges)};
}

}  // namespace dcolor
