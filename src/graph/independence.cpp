#include "graph/independence.h"

#include <algorithm>

#include "util/check.h"

namespace dcolor {

namespace {

/// Recursive max-independent-set on an adjacency-matrix bitset
/// representation of a small induced subgraph.
class MisSolver {
 public:
  explicit MisSolver(const Graph& g, const std::vector<NodeId>& nodes)
      : size_(static_cast<int>(nodes.size())) {
    DCOLOR_CHECK_MSG(size_ <= 128, "exact MIS limited to 128 nodes");
    adj_.assign(static_cast<std::size_t>(size_), Mask{});
    for (int i = 0; i < size_; ++i) {
      for (int j = i + 1; j < size_; ++j) {
        if (g.has_edge(nodes[static_cast<std::size_t>(i)],
                       nodes[static_cast<std::size_t>(j)])) {
          adj_[static_cast<std::size_t>(i)] |= bit(j);
          adj_[static_cast<std::size_t>(j)] |= bit(i);
        }
      }
    }
  }

  int solve() {
    Mask all{};
    for (int i = 0; i < size_; ++i) all |= bit(i);
    best_ = 0;
    recurse(all, 0);
    return best_;
  }

 private:
  using Mask = unsigned __int128;

  static Mask bit(int i) { return static_cast<Mask>(1) << i; }
  static int popcount(Mask m) {
    return __builtin_popcountll(static_cast<std::uint64_t>(m)) +
           __builtin_popcountll(static_cast<std::uint64_t>(m >> 64));
  }
  static int lowest(Mask m) {
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo) return __builtin_ctzll(lo);
    return 64 + __builtin_ctzll(static_cast<std::uint64_t>(m >> 64));
  }

  void recurse(Mask candidates, int chosen) {
    if (chosen + popcount(candidates) <= best_) return;  // bound
    if (candidates == 0) {
      best_ = std::max(best_, chosen);
      return;
    }
    // Pick the candidate with maximum degree within candidates: either it
    // is in the MIS (drop its neighborhood) or it is not (drop it).
    int pick = -1, pick_deg = -1;
    for (Mask m = candidates; m != 0;) {
      const int v = lowest(m);
      m &= m - 1;
      const int dv = popcount(adj_[static_cast<std::size_t>(v)] & candidates);
      if (dv > pick_deg) {
        pick_deg = dv;
        pick = v;
      }
    }
    if (pick_deg <= 1) {
      // Candidates induce disjoint edges and isolated vertices: the MIS
      // picks every isolated vertex and one endpoint per edge.
      int count = 0;
      Mask m = candidates;
      while (m != 0) {
        const int v = lowest(m);
        m &= m - 1;
        ++count;
        m &= ~adj_[static_cast<std::size_t>(v)];
      }
      best_ = std::max(best_, chosen + count);
      return;
    }
    // Branch: include pick.
    recurse(candidates & ~(adj_[static_cast<std::size_t>(pick)] | bit(pick)),
            chosen + 1);
    // Branch: exclude pick.
    recurse(candidates & ~bit(pick), chosen);
  }

  int size_;
  std::vector<Mask> adj_;
  int best_ = 0;
};

std::vector<NodeId> neighbors_vec(const Graph& g, NodeId v) {
  const auto nb = g.neighbors(v);
  return {nb.begin(), nb.end()};
}

}  // namespace

int independence_number_exact(const Graph& g,
                              const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return 0;
  return MisSolver(g, nodes).solve();
}

std::optional<int> neighborhood_independence_exact(const Graph& g,
                                                   int max_neighborhood) {
  int theta = g.num_nodes() > 0 ? 0 : 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > max_neighborhood) return std::nullopt;
    theta = std::max(theta, independence_number_exact(g, neighbors_vec(g, v)));
  }
  return theta;
}

int neighborhood_independence_lower(const Graph& g) {
  int theta = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Greedy maximal independent set within N(v), lowest degree first.
    auto nodes = neighbors_vec(g, v);
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return g.degree(a) < g.degree(b);
    });
    std::vector<NodeId> mis;
    for (NodeId u : nodes) {
      const bool independent =
          std::none_of(mis.begin(), mis.end(),
                       [&](NodeId w) { return g.has_edge(u, w); });
      if (independent) mis.push_back(u);
    }
    theta = std::max(theta, static_cast<int>(mis.size()));
  }
  return theta;
}

int neighborhood_independence_upper(const Graph& g) {
  int theta = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Greedy clique partition of N(v): each node joins the first clique
    // it is fully adjacent to.
    std::vector<std::vector<NodeId>> cliques;
    for (NodeId u : g.neighbors(v)) {
      bool placed = false;
      for (auto& clique : cliques) {
        const bool fits =
            std::all_of(clique.begin(), clique.end(),
                        [&](NodeId w) { return g.has_edge(u, w); });
        if (fits) {
          clique.push_back(u);
          placed = true;
          break;
        }
      }
      if (!placed) cliques.push_back({u});
    }
    theta = std::max(theta, static_cast<int>(cliques.size()));
  }
  return theta;
}

}  // namespace dcolor
