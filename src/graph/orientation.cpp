#include "graph/orientation.h"

#include <algorithm>
#include <queue>

#include "util/check.h"
#include "util/rng.h"

namespace dcolor {

Orientation Orientation::from_lists(std::vector<std::vector<NodeId>> out,
                                    std::vector<std::vector<NodeId>> in) {
  Orientation o;
  const std::size_t n = out.size();
  o.out_offsets_.assign(n + 1, 0);
  o.in_offsets_.assign(n + 1, 0);
  std::size_t total_out = 0, total_in = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total_out += out[v].size();
    total_in += in[v].size();
  }
  o.out_adj_.reserve(total_out);
  o.in_adj_.reserve(total_in);
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(out[v].begin(), out[v].end());
    std::sort(in[v].begin(), in[v].end());
    o.out_adj_.insert(o.out_adj_.end(), out[v].begin(), out[v].end());
    o.in_adj_.insert(o.in_adj_.end(), in[v].begin(), in[v].end());
    o.out_offsets_[v + 1] = static_cast<std::int64_t>(o.out_adj_.size());
    o.in_offsets_[v + 1] = static_cast<std::int64_t>(o.in_adj_.size());
  }
  return o;
}

Orientation Orientation::from_predicate(
    const Graph& g, const std::function<bool(NodeId, NodeId)>& u_to_v) {
  // Flat two-pass CSR build: n is large and arc lists are short, so
  // vector-of-vectors staging would spend the whole budget on small heap
  // allocations. Pass 1 decides every edge once (the direction bits are
  // kept in edge order so pass 2 never re-evaluates the predicate) and
  // counts arc degrees; pass 2 scatters into the finished arrays.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Orientation o;
  o.out_offsets_.assign(n + 1, 0);
  o.in_offsets_.assign(n + 1, 0);
  std::vector<std::uint8_t> toward_v;
  toward_v.reserve(static_cast<std::size_t>(g.num_edges()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u >= v) continue;  // visit each edge once
      const bool fwd = u_to_v(u, v);
      const bool bwd = u_to_v(v, u);
      DCOLOR_CHECK_MSG(fwd != bwd, "orientation predicate must pick exactly "
                                   "one direction for edge ("
                                       << u << "," << v << ")");
      toward_v.push_back(fwd ? 1 : 0);
      const auto from = static_cast<std::size_t>(fwd ? u : v);
      const auto to = static_cast<std::size_t>(fwd ? v : u);
      ++o.out_offsets_[from + 1];
      ++o.in_offsets_[to + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    o.out_offsets_[v + 1] += o.out_offsets_[v];
    o.in_offsets_[v + 1] += o.in_offsets_[v];
  }
  o.out_adj_.resize(static_cast<std::size_t>(o.out_offsets_[n]));
  o.in_adj_.resize(static_cast<std::size_t>(o.in_offsets_[n]));
  std::vector<std::int64_t> out_cur(o.out_offsets_.begin(),
                                    o.out_offsets_.end() - 1);
  std::vector<std::int64_t> in_cur(o.in_offsets_.begin(),
                                   o.in_offsets_.end() - 1);
  std::size_t e = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const bool fwd = toward_v[e++] != 0;
      const auto from = static_cast<std::size_t>(fwd ? u : v);
      const auto to = static_cast<std::size_t>(fwd ? v : u);
      o.out_adj_[static_cast<std::size_t>(out_cur[from]++)] = fwd ? v : u;
      o.in_adj_[static_cast<std::size_t>(in_cur[to]++)] = fwd ? u : v;
    }
  }
  // is_out_edge binary-searches the per-node segments; restore the sorted
  // order the staged build produced implicitly.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(o.out_adj_.begin() + o.out_offsets_[v],
              o.out_adj_.begin() + o.out_offsets_[v + 1]);
    std::sort(o.in_adj_.begin() + o.in_offsets_[v],
              o.in_adj_.begin() + o.in_offsets_[v + 1]);
  }
  return o;
}

Orientation Orientation::by_priority(const Graph& g,
                                     std::span<const std::int64_t> priority) {
  DCOLOR_CHECK(static_cast<NodeId>(priority.size()) == g.num_nodes());
  return from_predicate(g, [&](NodeId u, NodeId v) {
    const auto pu = priority[static_cast<std::size_t>(u)];
    const auto pv = priority[static_cast<std::size_t>(v)];
    return pv < pu || (pv == pu && v < u);
  });
}

Orientation Orientation::by_id(const Graph& g) {
  // Specialized build: adjacency lists are sorted ascending, so the
  // out-arcs of u ({v : v < u}) are exactly the prefix of nb(u) below u
  // and the in-arcs the suffix — one split point per node, no predicate
  // calls, and the copied segments are already sorted.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Orientation o;
  o.out_offsets_.assign(n + 1, 0);
  o.in_offsets_.assign(n + 1, 0);
  const auto arcs = static_cast<std::size_t>(g.num_edges());
  o.out_adj_.reserve(arcs);
  o.in_adj_.reserve(arcs);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nb = g.neighbors(u);
    const auto split = std::lower_bound(nb.begin(), nb.end(), u);
    o.out_adj_.insert(o.out_adj_.end(), nb.begin(), split);
    o.in_adj_.insert(o.in_adj_.end(), split, nb.end());
    const auto ui = static_cast<std::size_t>(u);
    o.out_offsets_[ui + 1] = static_cast<std::int64_t>(o.out_adj_.size());
    o.in_offsets_[ui + 1] = static_cast<std::int64_t>(o.in_adj_.size());
  }
  return o;
}

Orientation Orientation::induced(const Graph& sub, const Orientation& full) {
  DCOLOR_CHECK(full.num_nodes() == sub.num_nodes());
  const auto n = static_cast<std::size_t>(sub.num_nodes());
  Orientation o;
  o.out_offsets_.assign(n + 1, 0);
  o.in_offsets_.assign(n + 1, 0);
  const auto arcs = static_cast<std::size_t>(sub.num_edges());
  o.out_adj_.reserve(arcs);
  o.in_adj_.reserve(arcs);
  // Both inputs keep per-node lists sorted, so the intersection is a
  // linear merge; the output segments inherit the sorted order.
  const auto intersect_into = [](std::span<const NodeId> a,
                                 std::span<const NodeId> b,
                                 StorageVec<NodeId>& sink) {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        sink.push_back(a[i]);
        ++i;
        ++j;
      }
    }
  };
  std::size_t matched = 0;
  for (NodeId u = 0; u < sub.num_nodes(); ++u) {
    const auto nb = sub.neighbors(u);
    intersect_into(nb, full.out_neighbors(u), o.out_adj_);
    intersect_into(nb, full.in_neighbors(u), o.in_adj_);
    const auto ui = static_cast<std::size_t>(u);
    o.out_offsets_[ui + 1] = static_cast<std::int64_t>(o.out_adj_.size());
    o.in_offsets_[ui + 1] = static_cast<std::int64_t>(o.in_adj_.size());
    matched += static_cast<std::size_t>(o.out_offsets_[ui + 1] -
                                        o.out_offsets_[ui]) +
               static_cast<std::size_t>(o.in_offsets_[ui + 1] -
                                        o.in_offsets_[ui]);
  }
  // Every sub-edge must have appeared in full's arcs (once per endpoint);
  // a shortfall means `sub` is not a subgraph of full's graph.
  DCOLOR_CHECK_MSG(matched == 2 * arcs,
                   "Orientation::induced: sub has edges the full "
                   "orientation does not cover");
  return o;
}

Orientation Orientation::random(const Graph& g, Rng& rng) {
  // Flip one deterministic coin per undirected edge, keyed on the edge.
  const auto edges = g.edge_list();
  std::vector<std::uint8_t> flip;
  flip.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    flip.push_back(static_cast<std::uint8_t>(rng.below(2)));
  // Build via explicit arc lists (the predicate interface has no access to
  // the per-edge index).
  std::size_t idx = 0;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<NodeId>> out(n), in(n);
  for (const auto& [u, v] : edges) {
    const NodeId from = flip[idx] ? v : u;
    const NodeId to = flip[idx] ? u : v;
    ++idx;
    out[static_cast<std::size_t>(from)].push_back(to);
    in[static_cast<std::size_t>(to)].push_back(from);
  }
  return from_lists(std::move(out), std::move(in));
}

Orientation Orientation::degeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<int> deg(static_cast<std::size_t>(n));
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  std::vector<std::int64_t> removal_pos(static_cast<std::size_t>(n), 0);
  using Entry = std::pair<int, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (NodeId v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    pq.emplace(deg[static_cast<std::size_t>(v)], v);
  }
  std::int64_t pos = 0;
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (removed[static_cast<std::size_t>(v)] ||
        d != deg[static_cast<std::size_t>(v)])
      continue;  // stale entry
    removed[static_cast<std::size_t>(v)] = true;
    removal_pos[static_cast<std::size_t>(v)] = pos++;
    for (NodeId u : g.neighbors(v)) {
      if (!removed[static_cast<std::size_t>(u)]) {
        --deg[static_cast<std::size_t>(u)];
        pq.emplace(deg[static_cast<std::size_t>(u)], u);
      }
    }
  }
  // Orient each edge from the earlier-removed endpoint to the later one:
  // when v is removed, its not-yet-removed neighbors number <= degeneracy.
  return from_predicate(g, [&](NodeId u, NodeId v) {
    return removal_pos[static_cast<std::size_t>(u)] <
           removal_pos[static_cast<std::size_t>(v)];
  });
}

Orientation Orientation::adopt(std::span<const std::int64_t> out_offsets,
                               std::span<const NodeId> out_adj,
                               std::span<const std::int64_t> in_offsets,
                               std::span<const NodeId> in_adj) {
  DCOLOR_CHECK_MSG(out_offsets.size() == in_offsets.size(),
                   "adopt: out/in offset arrays disagree on n");
  const auto check_csr = [](std::span<const std::int64_t> offsets,
                            std::span<const NodeId> adj, const char* what) {
    DCOLOR_CHECK_MSG(!offsets.empty() && offsets.front() == 0,
                     "adopt: " << what << " offsets[0] must be 0");
    DCOLOR_CHECK_MSG(offsets.back() == static_cast<std::int64_t>(adj.size()),
                     "adopt: " << what << " offsets[n] != arc count");
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      DCOLOR_CHECK_MSG(offsets[i] >= offsets[i - 1],
                       "adopt: " << what << " offsets not monotone at " << i);
    }
  };
  check_csr(out_offsets, out_adj, "out");
  check_csr(in_offsets, in_adj, "in");
  Orientation o;
  o.out_offsets_ =
      StorageVec<std::int64_t>::adopt(out_offsets.data(), out_offsets.size());
  o.out_adj_ = StorageVec<NodeId>::adopt(out_adj.data(), out_adj.size());
  o.in_offsets_ =
      StorageVec<std::int64_t>::adopt(in_offsets.data(), in_offsets.size());
  o.in_adj_ = StorageVec<NodeId>::adopt(in_adj.data(), in_adj.size());
  return o;
}

Orientation Orientation::borrow() const noexcept {
  Orientation o;
  o.out_offsets_ =
      StorageVec<std::int64_t>::adopt(out_offsets_.data(), out_offsets_.size());
  o.out_adj_ = StorageVec<NodeId>::adopt(out_adj_.data(), out_adj_.size());
  o.in_offsets_ =
      StorageVec<std::int64_t>::adopt(in_offsets_.data(), in_offsets_.size());
  o.in_adj_ = StorageVec<NodeId>::adopt(in_adj_.data(), in_adj_.size());
  return o;
}

int Orientation::beta() const noexcept {
  int b = 1;
  for (NodeId v = 0; v < num_nodes(); ++v) b = std::max(b, beta_v(v));
  return b;
}

bool Orientation::is_out_edge(NodeId u, NodeId v) const noexcept {
  const auto lst = out_neighbors(u);
  return std::binary_search(lst.begin(), lst.end(), v);
}

}  // namespace dcolor
