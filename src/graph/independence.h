// Neighborhood independence θ(G).
//
// θ(G) = max over v of the independence number of G[N(v)] (Section 2 of
// the paper). θ is NP-hard in general; neighborhoods here are small
// (|N(v)| <= Δ), so an exact branch-and-bound is practical up to
// Δ ≈ 60–80, with a greedy lower bound and a clique-cover upper bound as
// fallbacks for larger instances.
#pragma once

#include <optional>

#include "graph/graph.h"

namespace dcolor {

/// Exact independence number of the subgraph induced by `nodes`.
/// Branch-and-bound; exponential worst case, fine for |nodes| <= ~60.
int independence_number_exact(const Graph& g, const std::vector<NodeId>& nodes);

/// Exact θ(G). `max_neighborhood` caps the work: returns nullopt if some
/// node's neighborhood exceeds the cap (call the bounds instead).
std::optional<int> neighborhood_independence_exact(const Graph& g,
                                                   int max_neighborhood = 64);

/// Greedy lower bound on θ(G) (maximal independent set per neighborhood).
int neighborhood_independence_lower(const Graph& g);

/// Clique-cover upper bound on θ(G): a greedy partition of each N(v) into
/// cliques; the independence number is at most the number of cliques.
int neighborhood_independence_upper(const Graph& g);

}  // namespace dcolor
