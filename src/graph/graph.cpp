#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace dcolor {

Graph Graph::from_edges(NodeId num_nodes,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  DCOLOR_CHECK(num_nodes >= 0);
  // Normalize: u < v, drop self-loops, dedup.
  for (auto& [u, v] : edges) {
    DCOLOR_CHECK_MSG(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes,
                     "edge (" << u << "," << v << ") out of range");
    if (u > v) std::swap(u, v);
  }
  std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.n_ = num_nodes;
  std::vector<std::int64_t> deg(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++deg[static_cast<std::size_t>(u) + 1];
    ++deg[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < deg.size(); ++i) deg[i] += deg[i - 1];
  g.offsets_ = deg;
  g.adj_.resize(static_cast<std::size_t>(edges.size()) * 2);
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto begin = g.adj_.begin() + g.offsets_[static_cast<std::size_t>(v)];
    auto end = g.adj_.begin() + g.offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end);
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

int Graph::max_degree() const noexcept {
  int d = 0;
  for (NodeId v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

int Graph::delta_paper() const noexcept { return std::max(2, max_degree()); }

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph::Induced Graph::induced_subgraph(const std::vector<NodeId>& nodes) const {
  Induced result;
  result.to_sub.assign(static_cast<std::size_t>(n_), -1);
  result.to_orig = nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DCOLOR_CHECK(nodes[i] >= 0 && nodes[i] < n_);
    DCOLOR_CHECK_MSG(result.to_sub[static_cast<std::size_t>(nodes[i])] == -1,
                     "duplicate node in induced_subgraph");
    result.to_sub[static_cast<std::size_t>(nodes[i])] =
        static_cast<NodeId>(i);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u : nodes) {
    const NodeId su = result.to_sub[static_cast<std::size_t>(u)];
    for (NodeId v : neighbors(u)) {
      const NodeId sv = result.to_sub[static_cast<std::size_t>(v)];
      if (sv >= 0 && su < sv) edges.emplace_back(su, sv);
    }
  }
  result.graph = Graph::from_edges(static_cast<NodeId>(nodes.size()),
                                   std::move(edges));
  return result;
}

Graph Graph::edge_subgraph(
    const std::vector<std::pair<NodeId, NodeId>>& kept_edges) const {
  for (const auto& [u, v] : kept_edges) {
    DCOLOR_CHECK_MSG(has_edge(u, v),
                     "edge_subgraph keeps non-edge (" << u << "," << v << ")");
  }
  return Graph::from_edges(n_, kept_edges);
}

Graph Graph::adopt(NodeId num_nodes, std::span<const std::int64_t> offsets,
                   std::span<const NodeId> adj) {
  DCOLOR_CHECK(num_nodes >= 0);
  DCOLOR_CHECK_MSG(offsets.size() == static_cast<std::size_t>(num_nodes) + 1,
                   "adopt: offsets size " << offsets.size() << " != n+1");
  DCOLOR_CHECK_MSG(!offsets.empty() && offsets.front() == 0,
                   "adopt: offsets[0] must be 0");
  DCOLOR_CHECK_MSG(offsets.back() == static_cast<std::int64_t>(adj.size()),
                   "adopt: offsets[n] " << offsets.back()
                                        << " != adjacency size " << adj.size());
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    DCOLOR_CHECK_MSG(offsets[i] >= offsets[i - 1],
                     "adopt: offsets not monotone at " << i);
  }
  for (const NodeId v : adj) {
    DCOLOR_CHECK_MSG(v >= 0 && v < num_nodes,
                     "adopt: neighbor id " << v << " out of range");
  }
  Graph g;
  g.n_ = num_nodes;
  g.offsets_ = StorageVec<std::int64_t>::adopt(offsets.data(), offsets.size());
  g.adj_ = StorageVec<NodeId>::adopt(adj.data(), adj.size());
  return g;
}

Graph Graph::from_csr(std::vector<std::int64_t> offsets,
                      std::vector<NodeId> adj) {
  DCOLOR_CHECK_MSG(!offsets.empty(), "from_csr: offsets must hold n+1 entries");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  (void)adopt(n, {offsets.data(), offsets.size()}, {adj.data(), adj.size()});
  Graph g;
  g.n_ = n;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  return g;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << num_edges() << ", Δ=" << max_degree()
     << ")";
  return os.str();
}

}  // namespace dcolor
