#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "graph/orientation.h"
#include "util/check.h"

namespace dcolor {

Components connected_components(const Graph& g) {
  Components result;
  result.component.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (result.component[static_cast<std::size_t>(start)] != -1) continue;
    const int id = result.count++;
    std::vector<NodeId> stack{start};
    result.component[static_cast<std::size_t>(start)] = id;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId u : g.neighbors(v)) {
        if (result.component[static_cast<std::size_t>(u)] == -1) {
          result.component[static_cast<std::size_t>(u)] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return result;
}

std::vector<int> bfs_distances(const Graph& g, NodeId source) {
  DCOLOR_CHECK(source >= 0 && source < g.num_nodes());
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  int ecc = 0;
  for (int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    diam = std::max(diam, eccentricity(g, v));
  return diam;
}

int degeneracy_number(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  const Orientation o = Orientation::degeneracy(g);
  int d = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    d = std::max(d, o.outdegree(v));  // true outdegree, not the β convention
  return d;
}

}  // namespace dcolor
