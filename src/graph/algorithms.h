// Basic graph algorithms used by tests, the CLI, and the experiment
// harness: connectivity, BFS distances, eccentricity/diameter, and the
// degeneracy number.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dcolor {

/// Connected-component ids in [0, num_components), by BFS.
struct Components {
  std::vector<int> component;  ///< per node
  int count = 0;
};
Components connected_components(const Graph& g);

/// BFS distances from `source` (-1 for unreachable nodes).
std::vector<int> bfs_distances(const Graph& g, NodeId source);

/// Eccentricity of `source` within its component.
int eccentricity(const Graph& g, NodeId source);

/// Exact diameter (max eccentricity over all nodes; O(n·m), fine at our
/// scales). Returns 0 for empty graphs; infinite distances are ignored
/// (per-component diameter max).
int diameter(const Graph& g);

/// Degeneracy number d(G): the smallest d such that every subgraph has a
/// node of degree <= d. Equals the max outdegree of the degeneracy
/// orientation.
int degeneracy_number(const Graph& g);

}  // namespace dcolor
