// Graph generators for tests, examples, and the experiment harness.
//
// The paper evaluates nothing empirically (brief announcement); our
// experiment suite runs its algorithms on standard synthetic families:
// random graphs for general-graph claims, and line graphs / hypergraph
// line graphs / unions of cliques for the bounded-neighborhood-
// independence claims.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dcolor {

class Rng;

/// Erdős–Rényi G(n, p).
Graph gnp(NodeId n, double p, Rng& rng);

/// G(n, p) with p chosen so the expected average degree is `avg_degree`.
Graph gnp_avg_degree(NodeId n, double avg_degree, Rng& rng);

/// Random d-regular-ish graph via the configuration model; self-loops and
/// multi-edges are dropped, so degrees are <= d (and == d for almost all
/// nodes when n*d is large). Requires n*d even-ish; we pad internally.
Graph random_near_regular(NodeId n, int d, Rng& rng);

/// Cycle C_n (n >= 3).
Graph cycle(NodeId n);

/// Path P_n.
Graph path(NodeId n);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(NodeId a, NodeId b);

/// 2D grid (rows x cols), 4-neighborhood.
Graph grid(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d nodes).
Graph hypercube(int dims);

/// Uniformly random spanning tree on n nodes (random Prüfer sequence).
Graph random_tree(NodeId n, Rng& rng);

/// Disjoint union of `count` cliques of size `size`. Neighborhood
/// independence θ == 1.
Graph disjoint_cliques(NodeId count, NodeId size);

/// "Clique chain": cliques of size `size` where consecutive cliques share
/// one node; θ == 2 at the shared nodes. Good θ-bounded stress test.
Graph clique_chain(NodeId count, NodeId size);

/// k-th power of a cycle: nodes i, j adjacent iff circular distance <= k.
/// θ == 2 for all k < n/2.
Graph cycle_power(NodeId n, int k);

/// Random graph with bounded neighborhood independence built as the union
/// of `cliques_per_node`-many random cliques of size `clique_size`
/// covering n nodes (interval/unit-disk-flavoured θ-bounded family).
Graph random_clique_cover(NodeId n, NodeId clique_size, int cliques_per_node,
                          Rng& rng);

/// Random geometric (unit-disk) graph: n points uniform in the unit
/// square, edge iff distance <= radius. Neighborhood independence θ <= 5.
/// Returns the graph and (optionally) the points via `out_xy`.
Graph random_geometric(NodeId n, double radius, Rng& rng,
                       std::vector<std::pair<double, double>>* out_xy =
                           nullptr);

}  // namespace dcolor
