#include "graph/coloring_checks.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace dcolor {

bool is_proper_coloring(const Graph& g, const std::vector<Color>& colors) {
  DCOLOR_CHECK(static_cast<NodeId>(colors.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (colors[static_cast<std::size_t>(v)] == kNoColor) return false;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] ==
          colors[static_cast<std::size_t>(v)])
        return false;
    }
  }
  return true;
}

std::vector<int> undirected_defects(const Graph& g,
                                    const std::vector<Color>& colors) {
  DCOLOR_CHECK(static_cast<NodeId>(colors.size()) == g.num_nodes());
  std::vector<int> defect(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    if (c == kNoColor) continue;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c)
        ++defect[static_cast<std::size_t>(v)];
    }
  }
  return defect;
}

std::vector<int> oriented_defects(const Orientation& o,
                                  const std::vector<Color>& colors) {
  DCOLOR_CHECK(static_cast<NodeId>(colors.size()) == o.num_nodes());
  std::vector<int> defect(static_cast<std::size_t>(o.num_nodes()), 0);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    if (c == kNoColor) continue;
    for (NodeId u : o.out_neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c)
        ++defect[static_cast<std::size_t>(v)];
    }
  }
  return defect;
}

int max_undirected_defect(const Graph& g, const std::vector<Color>& colors) {
  const auto d = undirected_defects(g, colors);
  return d.empty() ? 0 : *std::max_element(d.begin(), d.end());
}

int max_oriented_defect(const Orientation& o, const std::vector<Color>& colors) {
  const auto d = oriented_defects(o, colors);
  return d.empty() ? 0 : *std::max_element(d.begin(), d.end());
}

std::int64_t num_colors_used(const std::vector<Color>& colors) {
  std::unordered_set<Color> used;
  for (Color c : colors) {
    if (c != kNoColor) used.insert(c);
  }
  return static_cast<std::int64_t>(used.size());
}

bool all_colored(const std::vector<Color>& colors) {
  return std::none_of(colors.begin(), colors.end(),
                      [](Color c) { return c == kNoColor; });
}

}  // namespace dcolor
