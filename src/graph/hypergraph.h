// Hypergraphs and their line graphs.
//
// The paper's flagship family of bounded-neighborhood-independence graphs
// is the line graph of a rank-r hypergraph (θ <= r): two hyperedges are
// adjacent in the line graph iff they share a vertex, and pairwise
// *disjoint* hyperedges through one vertex set are impossible beyond r.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcolor {

class Rng;

/// A hypergraph on `num_vertices` vertices; each hyperedge is a sorted set
/// of distinct vertices.
class Hypergraph {
 public:
  Hypergraph(NodeId num_vertices, std::vector<std::vector<NodeId>> edges);

  NodeId num_vertices() const noexcept { return n_; }
  const std::vector<std::vector<NodeId>>& edges() const noexcept {
    return edges_;
  }

  /// Rank = maximum hyperedge size.
  int rank() const noexcept;

  /// Maximum number of hyperedges incident to one vertex.
  int max_vertex_degree() const noexcept;

 private:
  NodeId n_ = 0;
  std::vector<std::vector<NodeId>> edges_;
};

/// Uniformly random rank-r hypergraph: m hyperedges, each a uniform random
/// r-subset of the vertices.
Hypergraph random_hypergraph(NodeId num_vertices, std::int64_t num_edges,
                             int rank, Rng& rng);

/// The 2-uniform hypergraph of a graph (each edge is a hyperedge).
Hypergraph from_graph(const Graph& g);

}  // namespace dcolor
