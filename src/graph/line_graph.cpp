#include "graph/line_graph.h"

namespace dcolor {

Graph line_graph(const Hypergraph& h) {
  const auto& hyperedges = h.edges();
  const auto m = static_cast<NodeId>(hyperedges.size());
  // Bucket hyperedges by vertex; any two edges in a bucket are adjacent.
  std::vector<std::vector<NodeId>> incident(
      static_cast<std::size_t>(h.num_vertices()));
  for (NodeId e = 0; e < m; ++e) {
    for (NodeId v : hyperedges[static_cast<std::size_t>(e)])
      incident[static_cast<std::size_t>(v)].push_back(e);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& bucket : incident) {
    for (std::size_t i = 0; i < bucket.size(); ++i)
      for (std::size_t j = i + 1; j < bucket.size(); ++j)
        edges.emplace_back(bucket[i], bucket[j]);
  }
  return Graph::from_edges(m, std::move(edges));
}

Graph line_graph(const Graph& g) { return line_graph(from_graph(g)); }

}  // namespace dcolor
