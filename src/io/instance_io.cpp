#include "io/instance_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "storage/snapshot.h"
#include "util/check.h"

namespace dcolor {

namespace {

/// Strict line-based tokenizer with 1-based line numbers for errors.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(&is) {}

  /// Next non-empty line split into tokens; false at EOF.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(*is_, line)) {
      ++line_no_;
      tokens.clear();
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) const {
    DCOLOR_CHECK_MSG(false, "parse error at line " << line_no_ << ": " << what);
    __builtin_unreachable();
  }

  std::int64_t to_int(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(tok, &pos);
      if (pos != tok.size()) fail("not an integer: " + tok);
      return v;
    } catch (const std::logic_error& e) {
      if (dynamic_cast<const CheckError*>(&e) != nullptr) throw;
      fail("not an integer: " + tok);
    }
  }

 private:
  std::istream* is_;
  int line_no_ = 0;
};

void expect_header(LineReader& reader, const std::string& magic) {
  std::vector<std::string> tokens;
  if (!reader.next(tokens)) reader.fail("missing header " + magic);
  if (tokens.size() != 2 || tokens[0] != magic || tokens[1] != "v1") {
    reader.fail("expected '" + magic + " v1'");
  }
}

Graph read_graph_body(LineReader& reader) {
  std::vector<std::string> tokens;
  if (!reader.next(tokens) || tokens.size() != 2 || tokens[0] != "nodes") {
    reader.fail("expected 'nodes <n>'");
  }
  const auto n = static_cast<NodeId>(reader.to_int(tokens[1]));
  std::vector<std::pair<NodeId, NodeId>> edges;
  while (reader.next(tokens)) {
    if (tokens[0] == "end") break;
    if (tokens[0] != "edge" || tokens.size() != 3) {
      reader.fail("expected 'edge <u> <v>' or 'end'");
    }
    edges.emplace_back(static_cast<NodeId>(reader.to_int(tokens[1])),
                       static_cast<NodeId>(reader.to_int(tokens[2])));
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace

OwnedOldcInstance::OwnedOldcInstance() = default;
OwnedOldcInstance::~OwnedOldcInstance() = default;

OwnedOldcInstance::OwnedOldcInstance(OwnedOldcInstance&& other) noexcept {
  *this = std::move(other);
}

OwnedOldcInstance& OwnedOldcInstance::operator=(
    OwnedOldcInstance&& other) noexcept {
  graph = std::move(other.graph);
  instance = std::move(other.instance);
  backing = std::move(other.backing);
  // The snapshot's graph lives on its own heap allocation, so its address
  // survives this move; the inline `graph` member does not.
  instance.graph = backing != nullptr ? &backing->graph() : &graph;
  return *this;
}

void write_graph(std::ostream& os, const Graph& g) {
  os << "dcolor-graph v1\n";
  os << "nodes " << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edge_list()) os << "edge " << u << " " << v << "\n";
  os << "end\n";
}

Graph read_graph(std::istream& is) {
  LineReader reader(is);
  expect_header(reader, "dcolor-graph");
  return read_graph_body(reader);
}

void write_oldc(std::ostream& os, const OldcInstance& inst) {
  os << "dcolor-oldc v1\n";
  os << "colorspace " << inst.color_space << "\n";
  os << "symmetric " << (inst.symmetric ? 1 : 0) << "\n";
  write_graph(os, *inst.graph);
  if (!inst.symmetric) {
    for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
      for (NodeId u : inst.orientation.out_neighbors(v)) {
        os << "arc " << v << " " << u << "\n";
      }
    }
  }
  for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    os << "list " << v << " " << lst.size();
    for (std::size_t i = 0; i < lst.size(); ++i) {
      os << " " << lst.color(i) << " " << lst.defect(i);
    }
    os << "\n";
  }
  os << "end\n";
}

OwnedOldcInstance read_oldc(std::istream& is) {
  LineReader reader(is);
  expect_header(reader, "dcolor-oldc");
  std::vector<std::string> tokens;

  if (!reader.next(tokens) || tokens.size() != 2 || tokens[0] != "colorspace")
    reader.fail("expected 'colorspace <C>'");
  const std::int64_t color_space = reader.to_int(tokens[1]);

  if (!reader.next(tokens) || tokens.size() != 2 || tokens[0] != "symmetric")
    reader.fail("expected 'symmetric <0|1>'");
  const bool symmetric = reader.to_int(tokens[1]) != 0;

  expect_header(reader, "dcolor-graph");
  OwnedOldcInstance owned;
  owned.graph = read_graph_body(reader);
  owned.instance.graph = &owned.graph;
  owned.instance.color_space = color_space;
  owned.instance.symmetric = symmetric;

  const auto n = static_cast<std::size_t>(owned.graph.num_nodes());
  std::vector<std::pair<NodeId, NodeId>> arcs;
  std::vector<ColorList> lists(n);
  std::vector<bool> have_list(n, false);
  while (reader.next(tokens)) {
    if (tokens[0] == "end") break;
    if (tokens[0] == "arc") {
      if (tokens.size() != 3) reader.fail("expected 'arc <u> <v>'");
      arcs.emplace_back(static_cast<NodeId>(reader.to_int(tokens[1])),
                        static_cast<NodeId>(reader.to_int(tokens[2])));
    } else if (tokens[0] == "list") {
      if (tokens.size() < 3) reader.fail("expected 'list <v> <k> ...'");
      const auto v = static_cast<std::size_t>(reader.to_int(tokens[1]));
      if (v >= n) reader.fail("list node out of range");
      const auto k = static_cast<std::size_t>(reader.to_int(tokens[2]));
      if (tokens.size() != 3 + 2 * k) reader.fail("list length mismatch");
      std::vector<Color> colors(k);
      std::vector<int> defects(k);
      for (std::size_t i = 0; i < k; ++i) {
        colors[i] = reader.to_int(tokens[3 + 2 * i]);
        defects[i] = static_cast<int>(reader.to_int(tokens[4 + 2 * i]));
      }
      lists[v] = ColorList(std::move(colors), std::move(defects));
      have_list[v] = true;
    } else {
      reader.fail("unexpected token '" + tokens[0] + "'");
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!have_list[v]) reader.fail("missing list for node " + std::to_string(v));
  }
  owned.instance.lists.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    owned.instance.lists.set_node(v, lists[v]);

  if (!symmetric) {
    // Rebuild the orientation from the explicit arcs; every edge must have
    // exactly one (from_predicate checks the other direction).
    std::vector<std::vector<NodeId>> out(n);
    for (const auto& [u, v] : arcs)
      out[static_cast<std::size_t>(u)].push_back(v);
    for (auto& lst : out) std::sort(lst.begin(), lst.end());
    owned.instance.orientation = Orientation::from_predicate(
        owned.graph, [&](NodeId a, NodeId b) {
          const auto& lst = out[static_cast<std::size_t>(a)];
          return std::binary_search(lst.begin(), lst.end(), b);
        });
  } else {
    owned.instance.orientation = Orientation::by_id(owned.graph);
  }
  return owned;
}

void write_coloring(std::ostream& os, const std::vector<Color>& colors) {
  os << "dcolor-coloring v1\n";
  os << "colors " << colors.size() << "\n";
  for (std::size_t v = 0; v < colors.size(); ++v) {
    if (colors[v] != kNoColor) os << "c " << v << " " << colors[v] << "\n";
  }
  os << "end\n";
}

std::vector<Color> read_coloring(std::istream& is) {
  LineReader reader(is);
  expect_header(reader, "dcolor-coloring");
  std::vector<std::string> tokens;
  if (!reader.next(tokens) || tokens.size() != 2 || tokens[0] != "colors")
    reader.fail("expected 'colors <n>'");
  const auto n = static_cast<std::size_t>(reader.to_int(tokens[1]));
  std::vector<Color> colors(n, kNoColor);
  while (reader.next(tokens)) {
    if (tokens[0] == "end") break;
    if (tokens[0] != "c" || tokens.size() != 3) {
      reader.fail("expected 'c <v> <color>' or 'end'");
    }
    const auto v = static_cast<std::size_t>(reader.to_int(tokens[1]));
    if (v >= n) reader.fail("colored node out of range");
    colors[v] = reader.to_int(tokens[2]);
  }
  return colors;
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
  write_graph(os, g);
}

Graph load_graph(const std::string& path) {
  if (is_snapshot_file(path)) {
    const InstanceSnapshot snap = InstanceSnapshot::load(path);
    const Graph& g = snap.graph();
    return Graph::from_csr(
        {g.raw_offsets().begin(), g.raw_offsets().end()},
        {g.raw_adjacency().begin(), g.raw_adjacency().end()});
  }
  std::ifstream is(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  return read_graph(is);
}

void save_oldc(const std::string& path, const OldcInstance& inst) {
  std::ofstream os(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
  write_oldc(os, inst);
}

OwnedOldcInstance load_oldc(const std::string& path) {
  if (is_snapshot_file(path)) {
    auto snap =
        std::make_shared<InstanceSnapshot>(InstanceSnapshot::load(path));
    DCOLOR_CHECK_MSG(snap->has_instance(),
                     "snapshot " << path
                                 << " is graph-only (no palette lists); "
                                    "load it with --graph instead");
    OwnedOldcInstance owned;
    owned.backing = std::move(snap);
    // Copying the snapshot's instance copies borrowed views (pointer
    // copies into the mapping), which `backing` keeps alive.
    owned.instance = owned.backing->instance();
    owned.instance.graph = &owned.backing->graph();
    return owned;
  }
  std::ifstream is(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  return read_oldc(is);
}

}  // namespace dcolor
