#include "io/dot_export.h"

#include <array>
#include <fstream>
#include <ostream>

#include "util/check.h"

namespace dcolor {

namespace {

// A small qualitative palette (ColorBrewer Set3-ish), cycled.
constexpr std::array<const char*, 12> kPalette = {
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f"};

void write_nodes(std::ostream& os, const Graph& g,
                 const std::vector<Color>& colors,
                 const DotOptions& options) {
  const bool have_colors =
      !colors.empty() &&
      static_cast<NodeId>(colors.size()) == g.num_nodes();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v << " [";
    if (options.label_with_color && have_colors &&
        colors[static_cast<std::size_t>(v)] != kNoColor) {
      os << "label=\"" << v << ":" << colors[static_cast<std::size_t>(v)]
         << "\"";
    } else {
      os << "label=\"" << v << "\"";
    }
    if (options.fill_by_color && have_colors &&
        colors[static_cast<std::size_t>(v)] != kNoColor) {
      const auto idx = static_cast<std::size_t>(
          colors[static_cast<std::size_t>(v)] %
          static_cast<Color>(kPalette.size()));
      os << ", style=filled, fillcolor=\"" << kPalette[idx] << "\"";
    }
    os << "];\n";
  }
}

}  // namespace

void write_dot(std::ostream& os, const Graph& g,
               const std::vector<Color>& colors, const DotOptions& options) {
  os << "graph dcolor {\n  node [shape=circle];\n";
  write_nodes(os, g, colors, options);
  for (const auto& [u, v] : g.edge_list()) {
    os << "  " << u << " -- " << v << ";\n";
  }
  os << "}\n";
}

void write_dot(std::ostream& os, const Graph& g, const Orientation& o,
               const std::vector<Color>& colors, const DotOptions& options) {
  DCOLOR_CHECK(o.num_nodes() == g.num_nodes());
  os << "digraph dcolor {\n  node [shape=circle];\n";
  write_nodes(os, g, colors, options);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : o.out_neighbors(v)) {
      os << "  " << v << " -> " << u << ";\n";
    }
  }
  os << "}\n";
}

void save_dot(const std::string& path, const Graph& g,
              const std::vector<Color>& colors, const DotOptions& options) {
  std::ofstream os(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
  write_dot(os, g, colors, options);
}

}  // namespace dcolor
