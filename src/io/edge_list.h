// Whitespace edge-list ingestion (SNAP / DIMACS families).
//
// The real-graph on-ramp for the snapshot pipeline: parse a text edge
// list once, build the CSR `Graph`, and persist it as a binary snapshot
// (`dcolor --cmd=snapshot --from-edges=<file> --save=<g.snap>`) so every
// later run maps it back zero-copy instead of re-parsing megabytes of
// text.
//
// Accepted syntax, line by line:
//   * blank lines — skipped;
//   * comments — lines starting with '#' (SNAP), '%' (Matrix-Market-style
//     headers some mirrors prepend), or 'c' (DIMACS);
//   * 'p edge <n> <m>' / 'p sp <n> <m>' — DIMACS problem line: fixes the
//     node count and switches ids to 1-based;
//   * 'e <u> <v>' — DIMACS edge line;
//   * '<u> <v>' — bare pair (SNAP); ids are 0-based unless a problem
//     line appeared.
//
// Numbers go through util/parse (strict whole-token parsing: garbage
// throws with a line number instead of becoming node 0). Self-loops and
// duplicate edges are legal input — real datasets have both — and are
// dropped with counts reported in `EdgeListStats`. Without a problem
// line the node count is max id + 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dcolor {

struct EdgeListStats {
  std::int64_t lines = 0;          ///< total lines read
  std::int64_t comments = 0;       ///< comment/blank lines skipped
  std::int64_t edges = 0;          ///< edge lines accepted
  std::int64_t self_loops = 0;     ///< dropped u == v lines
  std::int64_t duplicates = 0;     ///< dropped repeated {u,v}
  bool dimacs = false;             ///< a 'p' problem line was seen
};

/// Parses an edge-list stream into a Graph. `stats` (optional) receives
/// ingestion accounting. Throws CheckError with a line number on
/// malformed input, out-of-range ids, or a DIMACS edge count mismatch.
Graph read_edge_list(std::istream& is, EdgeListStats* stats = nullptr);

/// File convenience wrapper (throws CheckError when unreadable).
Graph load_edge_list(const std::string& path, EdgeListStats* stats = nullptr);

}  // namespace dcolor
