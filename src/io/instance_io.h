// Plain-text serialization of graphs, instances, and colorings.
//
// A small line-oriented format so experiments are reproducible across
// runs and instances can be shipped in bug reports:
//
//   dcolor-graph v1
//   nodes <n>
//   edge <u> <v>            (one line per edge)
//
//   dcolor-oldc v1
//   colorspace <C>
//   symmetric <0|1>
//   graph                   (embedded graph block)
//   ...
//   arc <u> <v>              (orientation arcs, omitted when symmetric)
//   list <v> <k> x1 d1 x2 d2 ... xk dk
//
//   dcolor-coloring v1
//   colors <n>
//   c <v> <color>            (uncolored nodes omitted)
//
// Parsing is strict: malformed input throws CheckError with a line number.
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.h"
#include "graph/graph.h"

namespace dcolor {

/// Writes/reads a Graph.
void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

/// Writes/reads an OLDC instance. The read overload returns the graph by
/// value alongside the instance (whose `graph` pointer refers to it).
void write_oldc(std::ostream& os, const OldcInstance& inst);

struct OwnedOldcInstance {
  Graph graph;
  OldcInstance instance;  ///< instance.graph points at `graph`

  OwnedOldcInstance() = default;
  OwnedOldcInstance(OwnedOldcInstance&& other) noexcept { *this = std::move(other); }
  OwnedOldcInstance& operator=(OwnedOldcInstance&& other) noexcept {
    graph = std::move(other.graph);
    instance = std::move(other.instance);
    instance.graph = &graph;
    return *this;
  }
};
OwnedOldcInstance read_oldc(std::istream& is);

/// Writes/reads a coloring (kNoColor entries are omitted on write and
/// default on read).
void write_coloring(std::ostream& os, const std::vector<Color>& colors);
std::vector<Color> read_coloring(std::istream& is);

/// File convenience wrappers (throw CheckError when the file cannot be
/// opened).
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);
void save_oldc(const std::string& path, const OldcInstance& inst);
OwnedOldcInstance load_oldc(const std::string& path);

}  // namespace dcolor
