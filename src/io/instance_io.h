// Plain-text serialization of graphs, instances, and colorings.
//
// A small line-oriented format so experiments are reproducible across
// runs and instances can be shipped in bug reports:
//
//   dcolor-graph v1
//   nodes <n>
//   edge <u> <v>            (one line per edge)
//
//   dcolor-oldc v1
//   colorspace <C>
//   symmetric <0|1>
//   graph                   (embedded graph block)
//   ...
//   arc <u> <v>              (orientation arcs, omitted when symmetric)
//   list <v> <k> x1 d1 x2 d2 ... xk dk
//
//   dcolor-coloring v1
//   colors <n>
//   c <v> <color>            (uncolored nodes omitted)
//
// Parsing is strict: malformed input throws CheckError with a line number.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/instance.h"
#include "graph/graph.h"

namespace dcolor {

class InstanceSnapshot;

/// Writes/reads a Graph.
void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

/// Writes/reads an OLDC instance. The read overload returns the graph by
/// value alongside the instance (whose `graph` pointer refers to it).
void write_oldc(std::ostream& os, const OldcInstance& inst);

struct OwnedOldcInstance {
  Graph graph;
  OldcInstance instance;  ///< instance.graph points at `graph` — or at the
                          ///  snapshot's graph when `backing` is set
  /// Non-null when the instance was loaded zero-copy from a binary
  /// snapshot (storage/snapshot.h): the mapping plus the borrowed graph
  /// live here, and `graph` above stays empty.
  std::shared_ptr<InstanceSnapshot> backing;

  OwnedOldcInstance();
  ~OwnedOldcInstance();
  OwnedOldcInstance(OwnedOldcInstance&& other) noexcept;
  OwnedOldcInstance& operator=(OwnedOldcInstance&& other) noexcept;
};
OwnedOldcInstance read_oldc(std::istream& is);

/// Writes/reads a coloring (kNoColor entries are omitted on write and
/// default on read).
void write_coloring(std::ostream& os, const std::vector<Color>& colors);
std::vector<Color> read_coloring(std::istream& is);

/// File convenience wrappers (throw CheckError when the file cannot be
/// opened). The loaders SNIFF binary snapshots (storage/snapshot.h): a
/// file starting with the snapshot magic is mmap'd instead of parsed, so
/// every `--graph=` / `--instance=` / `--replay=` flag accepts either
/// format. `load_oldc` keeps the zero-copy borrowed views (see
/// OwnedOldcInstance::backing); `load_graph` materializes an owned copy
/// because its return value must outlive the mapping.
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);
void save_oldc(const std::string& path, const OldcInstance& inst);
OwnedOldcInstance load_oldc(const std::string& path);

}  // namespace dcolor
