// Graphviz (DOT) export of graphs, colorings, and orientations — for
// eyeballing small instances and for figures in write-ups.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"

namespace dcolor {

struct DotOptions {
  /// Colors are mapped onto a small qualitative palette (cycled); nodes
  /// with kNoColor are drawn unfilled.
  bool fill_by_color = true;
  /// Node label: "id" or "id:color".
  bool label_with_color = false;
};

/// Undirected graph, optionally filled by `colors` (may be empty).
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<Color>& colors = {},
               const DotOptions& options = {});

/// Directed rendering of an orientation (same coloring options).
void write_dot(std::ostream& os, const Graph& g, const Orientation& o,
               const std::vector<Color>& colors = {},
               const DotOptions& options = {});

/// File convenience wrapper.
void save_dot(const std::string& path, const Graph& g,
              const std::vector<Color>& colors = {},
              const DotOptions& options = {});

}  // namespace dcolor
