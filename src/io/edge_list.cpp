#include "io/edge_list.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/parse.h"

namespace dcolor {

namespace {

/// Splits a line into whitespace-separated tokens (no allocation churn:
/// the vector is reused across lines by the caller).
void split_tokens(const std::string& line, std::vector<std::string_view>* out) {
  out->clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j])))
      ++j;
    if (j > i) out->push_back(std::string_view(line).substr(i, j - i));
    i = j;
  }
}

std::string line_context(std::int64_t line_no, const char* what) {
  std::ostringstream os;
  os << "edge list line " << line_no << " (" << what << ")";
  return os.str();
}

/// True when `tok` is the single DIMACS tag character `tag`, matched
/// case-insensitively — SNAP mirrors carry `P`/`E` problem and edge lines.
bool is_tag(std::string_view tok, char tag) {
  return tok.size() == 1 &&
         std::tolower(static_cast<unsigned char>(tok[0])) == tag;
}

/// Largest node id we accept: `n = max_id + 1` must itself fit NodeId,
/// so the id ceiling is INT32_MAX - 1, not INT32_MAX.
constexpr std::int64_t kMaxNodeId = 0x7FFFFFFE;

}  // namespace

Graph read_edge_list(std::istream& is, EdgeListStats* stats) {
  EdgeListStats local;
  EdgeListStats& st = stats != nullptr ? *stats : local;
  st = EdgeListStats{};

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::string_view> tok;
  std::string line;
  std::int64_t declared_nodes = -1;  // from a DIMACS problem line
  std::int64_t declared_edges = -1;
  std::int64_t max_id = -1;
  std::int64_t line_no = 0;

  const auto parse_endpoint = [&](std::string_view text) {
    std::int64_t id = parse_int64(text, line_context(line_no, "node id"));
    if (st.dimacs) {
      DCOLOR_CHECK_MSG(id >= 1 && id <= declared_nodes,
                       "edge list line " << line_no << ": node id " << id
                                         << " outside [1, " << declared_nodes
                                         << "]");
      --id;  // DIMACS ids are 1-based
    } else {
      DCOLOR_CHECK_MSG(id >= 0, "edge list line " << line_no
                                                  << ": negative node id "
                                                  << id);
      DCOLOR_CHECK_MSG(id <= kMaxNodeId, "edge list line "
                                             << line_no << ": node id " << id
                                             << " exceeds NodeId range");
    }
    max_id = std::max(max_id, id);
    return static_cast<NodeId>(id);
  };

  const auto add_edge = [&](NodeId u, NodeId v) {
    ++st.edges;
    if (u == v) {
      ++st.self_loops;
      return;
    }
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  };

  while (std::getline(is, line)) {
    ++line_no;
    ++st.lines;
    split_tokens(line, &tok);
    if (tok.empty() || tok[0][0] == '#' || tok[0][0] == '%' ||
        is_tag(tok[0], 'c')) {
      ++st.comments;
      continue;
    }
    if (is_tag(tok[0], 'p')) {
      DCOLOR_CHECK_MSG(!st.dimacs,
                       "edge list line " << line_no
                                         << ": duplicate DIMACS problem line");
      DCOLOR_CHECK_MSG(tok.size() == 4, "edge list line "
                                            << line_no
                                            << ": expected 'p <fmt> <n> <m>'");
      declared_nodes =
          parse_int64(tok[2], line_context(line_no, "node count"));
      declared_edges =
          parse_int64(tok[3], line_context(line_no, "edge count"));
      DCOLOR_CHECK_MSG(declared_nodes >= 0 && declared_edges >= 0,
                       "edge list line " << line_no
                                         << ": negative problem-line counts");
      DCOLOR_CHECK_MSG(declared_nodes <= kMaxNodeId + 1,
                       "edge list line " << line_no << ": node count "
                                         << declared_nodes
                                         << " exceeds NodeId range");
      st.dimacs = true;
      continue;
    }
    if (is_tag(tok[0], 'e') || is_tag(tok[0], 'a')) {
      DCOLOR_CHECK_MSG(st.dimacs, "edge list line "
                                      << line_no
                                      << ": 'e' line before the DIMACS "
                                         "problem line");
      DCOLOR_CHECK_MSG(tok.size() == 3, "edge list line "
                                            << line_no
                                            << ": expected 'e <u> <v>'");
      add_edge(parse_endpoint(tok[1]), parse_endpoint(tok[2]));
      continue;
    }
    // Bare "<u> <v>" pair (SNAP). Extra columns (weights, timestamps)
    // are rejected — strictness over silent misreads.
    DCOLOR_CHECK_MSG(tok.size() == 2, "edge list line "
                                          << line_no
                                          << ": expected '<u> <v>', got "
                                          << tok.size() << " tokens");
    add_edge(parse_endpoint(tok[0]), parse_endpoint(tok[1]));
  }

  if (st.dimacs) {
    DCOLOR_CHECK_MSG(st.edges == declared_edges,
                     "edge list: DIMACS problem line declares "
                         << declared_edges << " edges, file has " << st.edges);
  }
  const std::int64_t n = st.dimacs ? declared_nodes : max_id + 1;
  const auto accepted = static_cast<std::int64_t>(edges.size());
  Graph g = Graph::from_edges(static_cast<NodeId>(n), std::move(edges));
  st.duplicates = accepted - g.num_edges();
  return g;
}

Graph load_edge_list(const std::string& path, EdgeListStats* stats) {
  std::ifstream is(path);
  DCOLOR_CHECK_MSG(is.good(), "cannot open edge list '" << path << "'");
  return read_edge_list(is, stats);
}

}  // namespace dcolor
