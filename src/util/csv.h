// Minimal CSV writer used by the bench binaries to dump raw data points
// next to the printed tables (for external plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dcolor {

/// Writes rows of cells to a CSV file with proper quoting. The file is
/// created on first write; the destructor flushes it.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits `columns` as the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  void row(const std::vector<std::string>& cells);

  /// True when the file opened successfully (bench binaries degrade to
  /// table-only output otherwise).
  bool ok() const noexcept { return static_cast<bool>(out_); }

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dcolor
