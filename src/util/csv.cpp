#include "util/csv.h"

#include "util/check.h"

namespace dcolor {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  if (out_) row(columns);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!out_) return;
  DCOLOR_CHECK_MSG(cells.size() == columns_,
                   "csv row width " << cells.size() << " != header width "
                                    << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace dcolor
