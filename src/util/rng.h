// Deterministic pseudo-random number generation.
//
// All experiments and generators take an explicit 64-bit seed so every run
// is reproducible. We use xoshiro256** seeded via SplitMix64 — fast, high
// quality, and stable across platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>
#include <vector>

namespace dcolor {

/// SplitMix64 step; used for seeding and cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with a std::uniform_random_bit_generator-
/// compatible interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Fork an independent stream (for per-node randomness in simulations).
  Rng fork() noexcept;

  /// Counter-based stream derivation: an independent generator for
  /// sub-stream `idx` of `seed`. Unlike fork(), the result depends only on
  /// (seed, idx) — not on draw order — so parallel builders can hand
  /// stream(base, v) to node v from any thread/chunking and produce output
  /// identical to a serial sweep.
  static Rng stream(std::uint64_t seed, std::uint64_t idx) noexcept;

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace dcolor
