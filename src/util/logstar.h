// The iterated logarithm log* and related helpers.
//
// Distributed symmetry-breaking round bounds are stated in terms of
// log*: the number of times log2 must be applied to reach a value <= 1.
#pragma once

#include <cstdint>

namespace dcolor {

/// log*₂(x): number of applications of log2 needed to bring x to <= 1.
/// log_star(1) == 0, log_star(2) == 1, log_star(4) == 2, log_star(16) == 3,
/// log_star(65536) == 4. Defined as 0 for x <= 1.
int log_star(double x) noexcept;

/// Integer overload (exact for the usual test points).
int log_star(std::uint64_t x) noexcept;

}  // namespace dcolor
