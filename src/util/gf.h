// Arithmetic over prime fields GF(p) and polynomial color encodings.
//
// Linial's O(log* n) coloring [Lin87] and the Kuhn/Kawarabayashi-Schwartzman
// defective coloring (Lemma 3.4, [Kuh09, KS18]) both rest on the same
// algebraic gadget: interpret a color c ∈ {0,…,q−1} as the base-p digit
// vector of c, i.e. as a polynomial g_c of degree ≤ D over GF(p) with
// p^{D+1} ≥ q. Two distinct colors yield distinct polynomials, which agree
// on at most D evaluation points — the "small intersection" property that
// drives the one-round color reductions.
#pragma once

#include <cstdint>
#include <vector>

namespace dcolor {

/// A polynomial over GF(p) given by its coefficient vector (degree = size-1).
struct GfPoly {
  std::uint64_t p = 2;                  ///< field modulus (prime)
  std::vector<std::uint64_t> coeffs;    ///< coeffs[i] multiplies x^i

  /// Degree bound: number of coefficients minus one (>= 0).
  int degree() const noexcept {
    return static_cast<int>(coeffs.empty() ? 0 : coeffs.size() - 1);
  }

  /// Horner evaluation at point x ∈ GF(p).
  std::uint64_t eval(std::uint64_t x) const noexcept;
};

/// Encode `value` ∈ [0, p^{num_coeffs}) as its base-p digit polynomial.
/// Distinct values yield distinct polynomials.
GfPoly encode_as_polynomial(std::uint64_t value, std::uint64_t p,
                            int num_coeffs);

/// encode_as_polynomial(value, p, num_coeffs).eval(x) without materializing
/// the coefficient vector — the hot path of the polynomial color
/// reductions, where every neighbor's polynomial is evaluated exactly once
/// per point. Requires value < p^num_coeffs and num_coeffs <= 64.
std::uint64_t eval_encoded(std::uint64_t value, std::uint64_t p,
                           int num_coeffs, std::uint64_t x) noexcept;

/// Horner evaluation of the polynomial with coefficient array
/// digits[0..m) (digits[i] multiplies x^i) over GF(p). The building block
/// behind GfPoly::eval and eval_encoded, exposed so hot loops can extract
/// a value's base-p digits once and evaluate at many points.
inline std::uint64_t eval_digits(const std::uint64_t* digits, int m,
                                 std::uint64_t p, std::uint64_t x) noexcept {
  std::uint64_t acc = 0;
  for (int i = m - 1; i >= 0; --i) {
    acc = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(acc) * x + digits[i]) % p);
  }
  return acc;
}

/// Smallest number of coefficients D+1 such that p^{D+1} >= space_size.
int coeffs_needed(std::uint64_t space_size, std::uint64_t p) noexcept;

/// Number of points where two distinct degree-<=D polynomials can agree
/// is at most D; sanity helper used in tests.
int max_agreements(const GfPoly& a, const GfPoly& b) noexcept;

}  // namespace dcolor
