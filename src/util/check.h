// Lightweight precondition / invariant checking.
//
// The library throws `dcolor::CheckError` on contract violations instead of
// aborting, so tests can assert that invalid inputs are rejected and
// long-running experiment drivers can report which instance failed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcolor {

/// Error thrown when a DCOLOR_CHECK contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace dcolor

/// Check `cond`; on failure throw CheckError with an optional streamed
/// message: DCOLOR_CHECK(x > 0) or DCOLOR_CHECK_MSG(x > 0, "x=" << x).
#define DCOLOR_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::dcolor::detail::check_failed(#cond, __FILE__, __LINE__, {});    \
  } while (false)

#define DCOLOR_CHECK_MSG(cond, streamed)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << streamed;                                                    \
      ::dcolor::detail::check_failed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                     \
  } while (false)
