#include "util/rng.h"

#include <unordered_set>

#include "util/check.h"

namespace dcolor {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept { return Rng((*this)()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t idx) noexcept {
  // Two splitmix rounds decorrelate (seed, idx) pairs before the xoshiro
  // seeding (itself a splitmix walk), so streams for adjacent idx share no
  // low-dimensional structure.
  std::uint64_t s = seed ^ 0xA3EC647659359ACDULL;
  std::uint64_t mixed = splitmix64(s);
  s = mixed ^ idx;
  mixed = splitmix64(s);
  return Rng(mixed);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  DCOLOR_CHECK_MSG(k <= n, "sample " << k << " from " << n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k * 2 >= n) {
    // Dense case: partial Fisher–Yates over [0, n).
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + below(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    std::unordered_set<std::uint64_t> seen;
    while (out.size() < k) {
      const std::uint64_t v = below(n);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

}  // namespace dcolor
