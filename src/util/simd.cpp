#include "util/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#define DCOLOR_SIMD_X86 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define DCOLOR_SIMD_X86 0
#endif

namespace dcolor::simd {

namespace {

#if DCOLOR_SIMD_X86
bool cpu_has_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & bit_AVX2) != 0;
}
#endif

SimdLevel detect_level() {
  const char* s = std::getenv("DCOLOR_SIMD");
  const std::string v = s != nullptr ? s : "auto";
  if (v == "off" || v == "generic") return SimdLevel::kGeneric;
#if DCOLOR_SIMD_X86
  if (v == "avx2") {
    DCOLOR_CHECK_MSG(cpu_has_avx2(), "DCOLOR_SIMD=avx2 but CPU lacks AVX2");
    return SimdLevel::kAvx2;
  }
  DCOLOR_CHECK_MSG(v == "auto" || v.empty(),
                   "DCOLOR_SIMD must be auto|off|generic|avx2, got \"" << v
                                                                      << "\"");
  return cpu_has_avx2() ? SimdLevel::kAvx2 : SimdLevel::kGeneric;
#else
  DCOLOR_CHECK_MSG(v == "auto" || v.empty(),
                   "DCOLOR_SIMD=" << v << " unsupported on this architecture");
  return SimdLevel::kGeneric;
#endif
}

// ---- portable paths ---------------------------------------------------
// Branch-free inner loops over plain arrays: auto-vectorizable, and the
// reference semantics the AVX2 paths must reproduce exactly.

std::size_t lower_bound_generic(const std::int64_t* a, std::size_t n,
                                std::int64_t x) noexcept {
  // Sorted input: the number of elements below x IS the lower bound.
  // Counting compares branch-free beats binary search for the short
  // palette lists the kernels probe; long arrays take std::lower_bound.
  if (n > 64) {
    return static_cast<std::size_t>(std::lower_bound(a, a + n, x) - a);
  }
  std::size_t before = 0;
  for (std::size_t i = 0; i < n; ++i) before += a[i] < x ? 1 : 0;
  return before;
}

std::size_t find_first_eq_generic(const std::int64_t* a, std::size_t n,
                                  std::int64_t x) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == x) return i;
  }
  return n;
}

/// Exact a mod k for integers held in doubles (a < 2^53, 2 <= k < 2^25):
/// the rounded quotient is within 3/4 of a/k, so a - q*k lands in
/// (-k, k) and one conditional add recovers the representative in [0, k).
inline double mod_exact(double a, double k, double inv_k) noexcept {
  double q = a * inv_k;
  // round-to-nearest without <cmath> (keeps the loop vectorizable):
  // adding and subtracting 2^52 snaps a non-negative double below 2^51
  // to the nearest integer under the default rounding mode.
  constexpr double kSnap = 4503599627370496.0;  // 2^52
  q = (q + kSnap) - kSnap;
  double r = a - q * k;
  r += r < 0.0 ? k : 0.0;
  return r;
}

std::int64_t count_eval_eq_generic(const std::int32_t* digits,
                                   std::size_t rows, int nc, std::uint32_t k,
                                   std::uint32_t x,
                                   std::uint32_t target) noexcept {
  const double kd = static_cast<double>(k);
  const double inv_k = 1.0 / kd;
  const double xd = static_cast<double>(x);
  const double td = static_cast<double>(target);
  std::int64_t count = 0;
  for (std::size_t j = 0; j < rows; ++j) {
    double acc = 0.0;
    for (int i = nc - 1; i >= 0; --i) {
      acc = mod_exact(
          acc * xd +
              static_cast<double>(digits[static_cast<std::size_t>(i) * rows +
                                         j]),
          kd, inv_k);
    }
    count += acc == td ? 1 : 0;
  }
  return count;
}

// ---- AVX2 paths -------------------------------------------------------
// Compiled with per-function target attributes so the translation unit
// builds without -mavx2; only entered behind the runtime CPUID check.

#if DCOLOR_SIMD_X86

__attribute__((target("avx2"))) std::size_t lower_bound_avx2(
    const std::int64_t* a, std::size_t n, std::int64_t x) noexcept {
  if (n > 64) {
    return static_cast<std::size_t>(std::lower_bound(a, a + n, x) - a);
  }
  const __m256i vx = _mm256_set1_epi64x(x);
  std::size_t before = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // a[i] < x  <=>  x > a[i]
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vx, va)));
    before += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) before += a[i] < x ? 1 : 0;
  return before;
}

__attribute__((target("avx2"))) std::size_t find_first_eq_avx2(
    const std::int64_t* a, std::size_t n, std::int64_t x) noexcept {
  const __m256i vx = _mm256_set1_epi64x(x);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vx)));
    if (mask != 0) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] == x) return i;
  }
  return n;
}

__attribute__((target("avx2"))) std::int64_t count_eval_eq_avx2(
    const std::int32_t* digits, std::size_t rows, int nc, std::uint32_t k,
    std::uint32_t x, std::uint32_t target) noexcept {
  const __m256d vk = _mm256_set1_pd(static_cast<double>(k));
  const __m256d vinv_k = _mm256_set1_pd(1.0 / static_cast<double>(k));
  const __m256d vx = _mm256_set1_pd(static_cast<double>(x));
  const __m256d vt = _mm256_set1_pd(static_cast<double>(target));
  const __m256d vzero = _mm256_setzero_pd();
  std::int64_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= rows; j += 4) {
    __m256d acc = vzero;
    for (int i = nc - 1; i >= 0; --i) {
      // Four rows' digit i: contiguous in the transposed layout.
      const __m128i d32 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          digits + static_cast<std::size_t>(i) * rows + j));
      const __m256d d = _mm256_cvtepi32_pd(d32);
      acc = _mm256_add_pd(_mm256_mul_pd(acc, vx), d);
      // Exact remainder (see mod_exact): acc - round(acc/k)*k, one
      // conditional +k. All intermediates are integers below 2^50.
      __m256d q = _mm256_mul_pd(acc, vinv_k);
      q = _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
      acc = _mm256_sub_pd(acc, _mm256_mul_pd(q, vk));
      const __m256d neg = _mm256_cmp_pd(acc, vzero, _CMP_LT_OQ);
      acc = _mm256_add_pd(acc, _mm256_and_pd(neg, vk));
    }
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(acc, vt, _CMP_EQ_OQ));
    count += __builtin_popcount(static_cast<unsigned>(mask));
  }
  if (j < rows) {
    // Tail rows through the scalar path (identical arithmetic).
    const double kd = static_cast<double>(k);
    const double inv_k = 1.0 / kd;
    for (; j < rows; ++j) {
      double acc = 0.0;
      for (int i = nc - 1; i >= 0; --i) {
        acc = mod_exact(
            acc * static_cast<double>(x) +
                static_cast<double>(
                    digits[static_cast<std::size_t>(i) * rows + j]),
            kd, inv_k);
      }
      count += acc == static_cast<double>(target) ? 1 : 0;
    }
  }
  return count;
}

#endif  // DCOLOR_SIMD_X86

}  // namespace

SimdLevel active_level() {
  static const SimdLevel level = detect_level();
  return level;
}

const char* level_name(SimdLevel level) noexcept {
  return level == SimdLevel::kAvx2 ? "avx2" : "generic";
}

std::size_t lower_bound_i64(const std::int64_t* a, std::size_t n,
                            std::int64_t x) noexcept {
#if DCOLOR_SIMD_X86
  if (active_level() == SimdLevel::kAvx2) return lower_bound_avx2(a, n, x);
#endif
  return lower_bound_generic(a, n, x);
}

std::size_t find_first_eq_i64(const std::int64_t* a, std::size_t n,
                              std::int64_t x) noexcept {
#if DCOLOR_SIMD_X86
  if (active_level() == SimdLevel::kAvx2) return find_first_eq_avx2(a, n, x);
#endif
  return find_first_eq_generic(a, n, x);
}

std::int64_t count_eval_eq(const std::int32_t* digits, std::size_t rows,
                           int nc, std::uint32_t k, std::uint32_t x,
                           std::uint32_t target) noexcept {
#if DCOLOR_SIMD_X86
  if (active_level() == SimdLevel::kAvx2) {
    return count_eval_eq_avx2(digits, rows, nc, k, x, target);
  }
#endif
  return count_eval_eq_generic(digits, rows, nc, k, x, target);
}

}  // namespace dcolor::simd
