#include "util/cli.h"

#include "util/check.h"
#include "util/parse.h"

namespace dcolor {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DCOLOR_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --key[=value]: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [k, v] : values_) consumed_[k] = false;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return parse_int64(it->second, "--" + key);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return parse_double(it->second, "--" + key);
}

std::string CliArgs::get_string(const std::string& key,
                                std::string fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second != "false" && it->second != "0";
}

bool CliArgs::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  consumed_[key] = true;
  return true;
}

void CliArgs::check_all_consumed() const {
  for (const auto& [k, used] : consumed_) {
    DCOLOR_CHECK_MSG(used, "unknown flag --" << k);
  }
}

}  // namespace dcolor
