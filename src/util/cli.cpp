#include "util/cli.h"

#include <cctype>

#include "util/check.h"
#include "util/parse.h"

namespace dcolor {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // A bare "--" carries no flag name; reject it like any positional.
    DCOLOR_CHECK_MSG(arg.rfind("--", 0) == 0 && arg.size() > 2,
                     "expected --key[=value]: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    DCOLOR_CHECK_MSG(!key.empty(), "empty flag name: --" << arg);
    // Silent last-one-wins would let `--n=100 --n=200` hide a typo'd
    // experiment configuration; repeated flags are an error instead.
    DCOLOR_CHECK_MSG(values_.find(key) == values_.end(),
                     "duplicate flag --" << key);
    values_[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
  }
  for (const auto& [k, v] : values_) consumed_[k] = false;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return parse_int64(it->second, "--" + key);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return parse_double(it->second, "--" + key);
}

std::string CliArgs::get_string(const std::string& key,
                                std::string fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  std::string v = it->second;
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  // Anything-but-false-is-true made `--x=OFF` silently enable x.
  DCOLOR_CHECK_MSG(false, "--" << key << " expects true/false/1/0, got: "
                                << it->second);
  return fallback;  // unreachable
}

bool CliArgs::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  consumed_[key] = true;
  return true;
}

void CliArgs::check_all_consumed() const {
  for (const auto& [k, used] : consumed_) {
    DCOLOR_CHECK_MSG(used, "unknown flag --" << k);
  }
}

}  // namespace dcolor
