#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dcolor {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void Table::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::format(double v) {
  std::ostringstream os;
  if (v == 0 || (std::abs(v) >= 0.01 && std::abs(v) < 1e7)) {
    os << std::fixed << std::setprecision(std::abs(v) >= 100 ? 1 : 3) << v;
  } else {
    os << std::scientific << std::setprecision(2) << v;
  }
  return os.str();
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) || c == '.' || c == '-' || c == '+' || c == 'e' ||
           c == 'E' || c == 'x';
  });
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : "";
      os << "  ";
      if (looks_numeric(cell))
        os << std::setw(static_cast<int>(width[i])) << std::right << cell;
      else
        os << std::setw(static_cast<int>(width[i])) << std::left << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << "  " << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os.flush();
}

}  // namespace dcolor
