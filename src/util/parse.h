// Strict numeric parsing for CLI flags and environment variables.
//
// std::strtol-family calls silently turn garbage into 0 and overflow into
// clamped values; every user-facing number in the library goes through
// these helpers instead, which accept exactly one well-formed number
// spanning the whole input and throw CheckError otherwise. `context`
// names the flag/variable in the error message.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dcolor {

/// Parses a base-10 signed integer; the entire input (sans surrounding
/// whitespace) must be consumed. Throws CheckError on empty input,
/// trailing characters, or overflow.
std::int64_t parse_int64(std::string_view text, std::string_view context);

/// Parses a floating-point number with the same whole-input contract.
double parse_double(std::string_view text, std::string_view context);

/// Non-throwing variant used by scanners that probe text which may not
/// hold a number at all (e.g. JSON field extraction): parses a base-10
/// integer PREFIX of `text` and returns nullopt when no digits lead it.
std::optional<std::int64_t> parse_int64_prefix(std::string_view text);

}  // namespace dcolor
