#include "util/gf.h"

#include <algorithm>

#include "util/check.h"

namespace dcolor {

std::uint64_t GfPoly::eval(std::uint64_t x) const noexcept {
  std::uint64_t acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(acc) * x + *it) % p);
  }
  return acc;
}

GfPoly encode_as_polynomial(std::uint64_t value, std::uint64_t p,
                            int num_coeffs) {
  DCOLOR_CHECK(p >= 2);
  DCOLOR_CHECK(num_coeffs >= 1);
  GfPoly poly;
  poly.p = p;
  poly.coeffs.resize(static_cast<std::size_t>(num_coeffs), 0);
  for (int i = 0; i < num_coeffs; ++i) {
    poly.coeffs[static_cast<std::size_t>(i)] = value % p;
    value /= p;
  }
  DCOLOR_CHECK_MSG(value == 0, "value does not fit in p^num_coeffs");
  return poly;
}

std::uint64_t eval_encoded(std::uint64_t value, std::uint64_t p,
                           int num_coeffs, std::uint64_t x) noexcept {
  std::uint64_t digits[64];
  const int m = num_coeffs < 64 ? num_coeffs : 64;
  for (int i = 0; i < m; ++i) {
    digits[i] = value % p;
    value /= p;
  }
  return eval_digits(digits, m, p, x);
}

int coeffs_needed(std::uint64_t space_size, std::uint64_t p) noexcept {
  int k = 1;
  __uint128_t cap = p;
  while (cap < space_size) {
    cap *= p;
    ++k;
  }
  return k;
}

int max_agreements(const GfPoly& a, const GfPoly& b) noexcept {
  return std::max(a.degree(), b.degree());
}

}  // namespace dcolor
