#include "util/rss.h"

#include <sys/resource.h>

#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace dcolor {

std::int64_t peak_rss_bytes() noexcept {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is KiB on Linux (bytes on macOS; this repo targets Linux).
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
}

PageFaults page_faults() noexcept {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return {};
  return {static_cast<std::int64_t>(ru.ru_minflt),
          static_cast<std::int64_t>(ru.ru_majflt)};
}

std::int64_t current_rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f != nullptr) {
    long long size_pages = 0;
    long long resident_pages = 0;
    const int got = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
    std::fclose(f);
    if (got == 2) {
      const long page = sysconf(_SC_PAGESIZE);
      return static_cast<std::int64_t>(resident_pages) *
             static_cast<std::int64_t>(page > 0 ? page : 4096);
    }
  }
#endif
  return peak_rss_bytes();
}

}  // namespace dcolor
