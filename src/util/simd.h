// Runtime-dispatched SIMD primitives for the dense-round kernels.
//
// Every primitive here has two implementations selected once per process:
//   * a PORTABLE fallback — plain scalar C++ written so the compiler can
//     auto-vectorize it on any target (and which any target can run);
//   * an AVX2 path compiled with a per-function target attribute (no
//     global -mavx2 build flag), entered only when CPUID reports AVX2 at
//     runtime.
//
// Selection: the DCOLOR_SIMD environment variable pins the level
// ("off"/"generic" force the portable path, "avx2" requires the AVX2
// path and throws when the CPU lacks it, "auto"/unset detects). Both
// paths are EXACT — integer results never depend on the level — so the
// engine's bit-identity contract (sim/engine.h) is preserved; tests run
// each primitive under both levels against a reference.
//
// The GF(k) evaluation uses double-precision modular arithmetic: for
// k < 2^25 every Horner intermediate acc·x + d is below 2^50 < 2^53 and
// therefore exact in a double, and the remainder is recovered exactly
// from the rounded quotient with one conditional fix-up. Callers gate on
// `gf_eval_supported(k)` and keep the 128-bit scalar path otherwise.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcolor::simd {

enum class SimdLevel : std::uint8_t {
  kGeneric = 0,  ///< portable fallback
  kAvx2,         ///< AVX2 intrinsics (x86-64, runtime-detected)
};

/// The level every primitive dispatches to (cached; consults DCOLOR_SIMD
/// on first use, then CPUID). Throws CheckError on a malformed
/// DCOLOR_SIMD value — strict like the other DCOLOR_* knobs.
SimdLevel active_level();

const char* level_name(SimdLevel level) noexcept;

/// First index i in the ascending array a[0..n) with a[i] >= x (n when
/// none) — identical to std::lower_bound(a, a+n, x) - a.
std::size_t lower_bound_i64(const std::int64_t* a, std::size_t n,
                            std::int64_t x) noexcept;

/// First index i in a[0..n) with a[i] == x, n when none.
std::size_t find_first_eq_i64(const std::int64_t* a, std::size_t n,
                              std::int64_t x) noexcept;

/// True when the exact double-precision GF(k) evaluation applies.
constexpr bool gf_eval_supported(std::uint64_t k) noexcept {
  return k >= 2 && k < (std::uint64_t{1} << 25);
}

/// Count rows j in [0, rows) whose degree-(nc-1) polynomial evaluates to
/// `target` at point `x` over GF(k). `digits` is the TRANSPOSED digit
/// matrix: digit i of row j lives at digits[i*rows + j]; all digits are
/// in [0, k). Requires gf_eval_supported(k), x < k, target < k, nc >= 1.
/// Bit-identical to calling eval_digits (util/gf.h) per row.
std::int64_t count_eval_eq(const std::int32_t* digits, std::size_t rows,
                           int nc, std::uint32_t k, std::uint32_t x,
                           std::uint32_t target) noexcept;

}  // namespace dcolor::simd
