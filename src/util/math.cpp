#include "util/math.h"

#include <algorithm>
#include <bit>
#include <initializer_list>
#include <limits>

namespace dcolor {

int floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

std::uint64_t isqrt(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(__builtin_sqrt(static_cast<double>(x)));
  // Correct the floating-point estimate in both directions.
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x && r + 1 != 0) ++r;
  return r;
}

std::uint64_t ceil_sqrt(std::uint64_t x) noexcept {
  const std::uint64_t r = isqrt(x);
  return r * r == x ? r : r + 1;
}

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  k = std::min(k, n - k);
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    // result = result * factor / i, exact because i consecutive products
    // are divisible by i!. Detect overflow via 128-bit intermediate.
    const __uint128_t wide = static_cast<__uint128_t>(result) * factor;
    if (wide / factor != result || wide / i > kMax) return kMax;
    result = static_cast<std::uint64_t>(wide / i);
  }
  return result;
}

std::uint64_t pow_mod(std::uint64_t x, std::uint64_t e, std::uint64_t m) noexcept {
  if (m == 1) return 0;
  std::uint64_t result = 1;
  x %= m;
  while (e > 0) {
    if (e & 1)
      result = static_cast<std::uint64_t>(
          static_cast<__uint128_t>(result) * x % m);
    x = static_cast<std::uint64_t>(static_cast<__uint128_t>(x) * x % m);
    e >>= 1;
  }
  return result;
}

namespace {

bool miller_rabin(std::uint64_t n, std::uint64_t a) noexcept {
  if (n % a == 0) return n == a;
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 0; i < r - 1; ++i) {
    x = static_cast<std::uint64_t>(static_cast<__uint128_t>(x) * x % n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Deterministic witness set for 64-bit integers.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin(n, a)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  if (n % 2 == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

}  // namespace dcolor
