#include "util/parallel.h"

#include <algorithm>

#include "sim/network.h"
#include "sim/scheduler.h"

namespace dcolor {

int default_setup_threads() noexcept {
  return Network::default_num_threads();
}

void parallel_chunks(int num_chunks, int threads,
                     const std::function<void(int)>& job) {
  if (num_chunks <= 0) return;
  threads = std::min(threads, num_chunks);
  if (threads <= 1) {
    for (int c = 0; c < num_chunks; ++c) job(c);
    return;
  }
  // On a fleet worker (a batch job, a serve request), run the chunks as
  // a region of the ambient scheduler: idle workers steal them and no
  // per-call pool is spun up. The chunk DECOMPOSITION is the caller's
  // (never a function of worker count), so results are unchanged.
  if (sched::Scheduler* ambient = sched::Scheduler::current()) {
    ambient->parallel_for(num_chunks, job);
    return;
  }
  sched::Scheduler pool(threads - 1);  // caller participates
  pool.parallel_for(num_chunks, job);
}

}  // namespace dcolor
