#include "util/parallel.h"

#include <algorithm>

#include "sim/network.h"
#include "sim/thread_pool.h"

namespace dcolor {

int default_setup_threads() noexcept {
  return Network::default_num_threads();
}

void parallel_chunks(int num_chunks, int threads,
                     const std::function<void(int)>& job) {
  if (num_chunks <= 0) return;
  threads = std::min(threads, num_chunks);
  if (threads <= 1) {
    for (int c = 0; c < num_chunks; ++c) job(c);
    return;
  }
  detail::SimThreadPool pool(threads);
  pool.run(num_chunks, job);
}

}  // namespace dcolor
