// Small integer-math helpers shared across the library.
#pragma once

#include <cstdint>

namespace dcolor {

/// ⌈a / b⌉ for non-negative a and positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// ⌊log2 x⌋ for x >= 1.
int floor_log2(std::uint64_t x) noexcept;

/// ⌈log2 x⌉ for x >= 1 (0 for x == 1).
int ceil_log2(std::uint64_t x) noexcept;

/// ⌊√x⌋ computed exactly with integer arithmetic.
std::uint64_t isqrt(std::uint64_t x) noexcept;

/// ⌈√x⌉.
std::uint64_t ceil_sqrt(std::uint64_t x) noexcept;

/// Binomial coefficient C(n, k), saturating at UINT64_MAX on overflow.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept;

/// Deterministic Miller–Rabin primality for 64-bit integers.
bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n >= 2 recommended; returns 2 for n <= 2).
std::uint64_t next_prime(std::uint64_t n) noexcept;

/// x^e mod m with 128-bit intermediate.
std::uint64_t pow_mod(std::uint64_t x, std::uint64_t e, std::uint64_t m) noexcept;

}  // namespace dcolor
