// Resident-set-size sampling for memory accounting.
//
// `getrusage` max-RSS is monotone over the PROCESS lifetime: once one
// large workload has run, every later sample inherits its peak, which is
// useless for per-section reporting (bench/e14 learned this the hard
// way). These helpers expose both readings so callers can pick the right
// one: `current_rss_bytes` for per-section deltas, `peak_rss_bytes` for
// the process-lifetime bound.
#pragma once

#include <cstdint>

namespace dcolor {

/// Resident set size RIGHT NOW, in bytes (Linux: /proc/self/statm,
/// falling back to getrusage peak elsewhere). 0 when unreadable.
std::int64_t current_rss_bytes() noexcept;

/// Process-lifetime PEAK resident set size in bytes (getrusage
/// ru_maxrss). Monotone: never decreases, regardless of frees.
std::int64_t peak_rss_bytes() noexcept;

/// Cumulative page-fault counters (getrusage; monotone like ru_maxrss —
/// diff two readings to attribute faults to a section). `minor` faults
/// are satisfied without I/O (fresh anonymous pages, already-cached file
/// pages — the expected cost of touching a mapped snapshot); `major`
/// faults hit the disk. Both 0 when unreadable.
struct PageFaults {
  std::int64_t minor = 0;
  std::int64_t major = 0;
};
PageFaults page_faults() noexcept;

}  // namespace dcolor
