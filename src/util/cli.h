// Tiny command-line flag parser for the example and bench binaries.
//
// Supports `--key=value` and `--flag` (boolean). Unknown flags are an
// error so typos don't silently run the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dcolor {

class CliArgs {
 public:
  /// Parses argv; throws CheckError on malformed arguments.
  CliArgs(int argc, char** argv);

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, std::string fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  bool has(const std::string& key) const;

  /// Throws if any provided flag was never queried — catches typos.
  void check_all_consumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace dcolor
