// Chunked parallel-for for the setup path (graph generators, instance
// builders). Thin wrapper over the simulator's worker pool that keeps
// sim headers out of util/graph/core headers.
//
// Determinism contract (same as the simulator kernel): callers key all
// per-chunk output by the chunk index and merge in chunk order; the chunk
// decomposition itself must never depend on the thread count.
#pragma once

#include <functional>

namespace dcolor {

/// Process default for setup parallelism: Network::default_num_threads()
/// (DCOLOR_SIM_THREADS / set_default_num_threads), so one knob controls
/// both construction and round execution.
int default_setup_threads() noexcept;

/// Runs job(0) .. job(num_chunks - 1) across `threads` workers (any chunk
/// may run on any worker; the calling thread participates). threads <= 1
/// or num_chunks <= 1 degrades to an inline serial loop with no pool
/// spin-up. Exceptions thrown by `job` must not escape.
void parallel_chunks(int num_chunks, int threads,
                     const std::function<void(int)>& job);

}  // namespace dcolor
