#include "util/logstar.h"

#include <cmath>

namespace dcolor {

int log_star(double x) noexcept {
  int k = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++k;
  }
  return k;
}

int log_star(std::uint64_t x) noexcept { return log_star(static_cast<double>(x)); }

}  // namespace dcolor
