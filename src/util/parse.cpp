#include "util/parse.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <string>

#include "util/check.h"

namespace dcolor {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::int64_t parse_int64(std::string_view text, std::string_view context) {
  const std::string_view t = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  DCOLOR_CHECK_MSG(ec != std::errc::result_out_of_range,
                   context << ": integer out of range: \"" << std::string(text)
                           << "\"");
  DCOLOR_CHECK_MSG(ec == std::errc() && ptr == t.data() + t.size(),
                   context << ": expected an integer, got \""
                           << std::string(text) << "\"");
  return value;
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string_view t = trim(text);
  // strtod via a NUL-terminated copy: from_chars<double> is still missing
  // from some libstdc++ configurations this project targets.
  const std::string buf(t);
  DCOLOR_CHECK_MSG(!buf.empty(), context << ": expected a number, got \""
                                         << std::string(text) << "\"");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  DCOLOR_CHECK_MSG(errno != ERANGE, context << ": number out of range: \""
                                            << std::string(text) << "\"");
  DCOLOR_CHECK_MSG(end == buf.c_str() + buf.size(),
                   context << ": expected a number, got \"" << std::string(text)
                           << "\"");
  return value;
}

std::optional<std::int64_t> parse_int64_prefix(std::string_view text) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr == text.data()) return std::nullopt;
  return value;
}

}  // namespace dcolor
