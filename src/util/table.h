// Plain-text table printer for experiment output.
//
// The bench binaries print paper-style result tables; this keeps the
// formatting consistent and the call sites readable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace dcolor {

/// Column-aligned text table. Add a header once, then rows; `print`
/// right-aligns numeric-looking cells and left-aligns text.
class Table {
 public:
  explicit Table(std::string title = {});

  void header(std::vector<std::string> columns);
  void row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    row({format(cells)...});
  }

  void print(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  static std::string format(const std::string& s) { return s; }
  static std::string format(const char* s) { return s; }
  static std::string format(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format(T v) {
    return std::to_string(v);
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcolor
