// Resource-accounting metrics: counters, gauges, and histograms behind a
// hierarchical StatsRegistry, installable like Tracer/InvariantChecker.
//
// The paper's whole contribution is a trade-off surface — colors used
// versus rounds versus CONGEST message bits — and this layer is how the
// repo measures it. Producers throughout the stack (Network, PaletteStore
// call sites, the batch runner, the invariant checker) record into the
// thread-local current registry; `dcolor --cmd=arena` joins the numbers
// into a cross-solver Pareto report, and `--stats` dumps them as JSON or
// Prometheus text exposition.
//
// Determinism contract (mirrors the JSONL trace's "t" quarantine): every
// metric carries a StatDomain:
//   * kStable — bit-identical at every thread count AND engine;
//   * kEngine — bit-identical at every thread count, but may differ
//     between the scalar and vector engines (e.g. active-node histograms
//     inherit RoundMetrics::peak_active_nodes' documented carve-out, and
//     scalar/vector dispatch counts differ by construction);
//   * kTiming — wall clocks and RSS; nondeterministic, quarantined in a
//     trailing "t" section of the JSON export.
// `to_json(StatDomain::kStable)` therefore yields a byte-identical string
// for one workload at any thread count and engine.
//
// Cost contract (mirrors the tracer's):
//   * no registry installed — producers pay one thread-local pointer test
//     (Network::run caches it once per run, like the tracer pointer);
//   * registry installed — metric handles are resolved once (the only
//     allocating step, first resolution per name) and recording into a
//     resolved handle never allocates. Verified by test_stats.cpp with
//     the perf_smoke operator-new counter.
//
// Threading: install/uninstall/current are thread-local, so concurrent
// batch jobs on different worker threads record into fully isolated
// per-job registries. A registry itself is not thread-safe; record from
// the thread that installed it (pool threads inside one Network::run
// never touch the registry — the engine records at serial points).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dcolor {

class PaletteStore;

/// Determinism class of one metric. Order matters: exports can be
/// truncated at a maximum domain (`to_json(kStable)` drops everything
/// engine-dependent and timed).
enum class StatDomain : std::uint8_t {
  kStable = 0,  ///< identical at every thread count and engine
  kEngine = 1,  ///< identical per engine; may differ scalar vs vector
  kTiming = 2,  ///< wall clock / RSS — nondeterministic, quarantined
};

/// Monotone event count.
struct StatCounter {
  std::int64_t value = 0;

  void add(std::int64_t delta) noexcept { value += delta; }
};

/// Point-in-time level plus its high-water mark.
struct StatGauge {
  std::int64_t value = 0;
  std::int64_t peak = 0;

  void set(std::int64_t v) noexcept {
    value = v;
    if (v > peak) peak = v;
  }
};

/// Power-of-two-bucket distribution with exact count/sum/min/max.
/// Bucket i holds values in [2^(i-1), 2^i - 1] (bucket 0 holds 0), i.e.
/// upper bound 2^i - 1 — the Prometheus `le` label of the bucket.
struct StatHistogram {
  static constexpr int kBuckets = 64;

  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;
  std::array<std::int64_t, kBuckets> buckets{};

  void record(std::int64_t v) noexcept;
};

/// Hierarchical (dot-named) registry of counters, gauges, and
/// histograms. Handle references returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (node-based
/// storage), so producers resolve once and record through the handle.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  ~StatsRegistry();  ///< uninstalls if still installed

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Makes this registry the thread-current one (picked up by every
  /// producer on this thread). Installs nest: uninstall restores the
  /// previously current registry.
  void install();
  /// Restores the registry that was current before install().
  void uninstall();
  /// The registry producers record into (null = metrics disabled).
  static StatsRegistry* current() noexcept;

  /// Finds or creates a metric. The domain is fixed by the first
  /// resolution of a name; later calls may pass any domain (ignored).
  /// First resolution of a name allocates; nothing else here does.
  StatCounter& counter(std::string_view name,
                       StatDomain domain = StatDomain::kStable);
  StatGauge& gauge(std::string_view name,
                   StatDomain domain = StatDomain::kStable);
  StatHistogram& histogram(std::string_view name,
                           StatDomain domain = StatDomain::kStable);

  /// Convenience producer: snapshots a palette store's accounting into
  /// `<prefix>.*` gauges. `palette.content_bytes` is the deterministic
  /// size-based figure (PaletteStore::content_bytes); the capacity-based
  /// `palette.arena_bytes` is recorded under kTiming because leased
  /// arenas retain capacity from previous jobs.
  void observe_palettes(const PaletteStore& store,
                        std::string_view prefix = "palette");

  /// Convenience producer: samples current/peak RSS into
  /// `mem.current_rss_bytes` / `mem.peak_rss_bytes` (kTiming gauges).
  void sample_rss();

  /// Structured JSON. Metrics are grouped into a deterministic part
  /// ("counters"/"gauges"/"histograms", kStable only), an "engine"
  /// section (kEngine), and a trailing "t" section (kTiming) — the same
  /// quarantine convention as the JSONL trace. `max_domain` truncates:
  /// kStable emits only the deterministic part.
  std::string to_json(StatDomain max_domain = StatDomain::kTiming) const;

  /// Prometheus text exposition format (the future `--cmd=serve`
  /// payload): HELP-free `# TYPE` blocks, names prefixed and sanitized
  /// (`sim.round_sent_bits` -> `dcolor_sim_round_sent_bits`), gauges
  /// emit a `_peak` twin, histograms emit cumulative `_bucket{le=...}`,
  /// `_sum`, and `_count` series.
  std::string to_prometheus(std::string_view prefix = "dcolor") const;

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  template <typename T>
  struct Entry {
    StatDomain domain = StatDomain::kStable;
    T metric;
  };
  // std::map: sorted iteration gives deterministic export order and node
  // stability keeps handle references valid; heterogeneous less<> makes
  // repeat lookups by string_view allocation-free.
  template <typename T>
  using Table = std::map<std::string, Entry<T>, std::less<>>;

  Table<StatCounter> counters_;
  Table<StatGauge> gauges_;
  Table<StatHistogram> histograms_;
  bool installed_ = false;
  StatsRegistry* prev_ = nullptr;  ///< registry displaced by install()
};

/// Writes a registry to `path` in `format` ("json", "prom"/"prometheus").
/// Throws CheckError on unknown format or unwritable path.
void write_stats_file(const StatsRegistry& stats, const std::string& format,
                      const std::string& path);

}  // namespace dcolor
