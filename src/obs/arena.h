// Cross-solver "arena": every capable registry solver head-to-head on a
// scenario matrix, joined into a Pareto report (ROADMAP item 4).
//
// The paper's contribution is a trade-off — colors used versus rounds
// versus CONGEST message bits — so a single-column leaderboard would
// miss the point. The arena runs each scenario (generator × n × Δ,
// premise-by-construction via the batch runner) through every selected
// solver and marks the rows on the Pareto front of
// (colors_used, rounds, message_bits), minimized over valid rows.
//
// Determinism: the heavy lifting is run_batch, so every deterministic
// field (colors, rounds, bits, palette bytes, the front itself) is
// bit-identical at every worker count and across scalar/vector engines;
// wall time and RSS ride in the per-row "t" quarantine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/batch_runner.h"

namespace dcolor {

/// Scenario matrix + execution knobs. The defaults give a small but
/// non-trivial 2×2×2 matrix over all registry solvers.
struct ArenaOptions {
  std::vector<std::string> generators = {"gnp", "regular"};
  std::vector<NodeId> sizes = {128, 512};
  std::vector<int> degrees = {6, 12};
  /// Registry names/aliases to race; empty = every registered solver.
  std::vector<std::string> solvers;
  std::uint64_t seed = 1;  ///< per-scenario instance seed (shared by all
                           ///< solvers, so they color the SAME graph)
  int threads = 0;         ///< batch workers; 0 = default_setup_threads()
  bool check = false;      ///< run each job under a collect-mode checker
  /// Simulator engine for every job (differential runs pin kScalar /
  /// kVector; deterministic fields are identical either way).
  EngineKind sim_engine = EngineKind::kAuto;
};

struct ArenaRow {
  BatchJobResult result;
  bool pareto = false;  ///< on the (colors, rounds, bits) front
};

struct ArenaScenario {
  std::string generator;
  NodeId n = 0;
  int degree = 0;
  std::vector<ArenaRow> rows;  ///< one per solver, selection order
};

struct ArenaReport {
  std::vector<ArenaScenario> scenarios;
  std::uint64_t seed = 1;
  EngineKind sim_engine = EngineKind::kAuto;
  std::int64_t jobs_valid = 0;
  std::int64_t jobs_failed = 0;  ///< error (incl. premise refusal) or invalid

  /// Human-readable Pareto tables, one section per scenario.
  std::string to_markdown() const;
  /// Machine-readable twin; per-row timing quarantined in a trailing "t"
  /// object, so stripping `"t"` is byte-identical across worker counts
  /// and engines.
  std::string to_json() const;
};

/// Runs the matrix (via run_batch — per-job stats, arena reuse, and the
/// worker-count determinism contract come from there) and computes the
/// per-scenario Pareto fronts.
ArenaReport run_arena(const ArenaOptions& options = {});

}  // namespace dcolor
