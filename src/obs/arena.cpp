#include "obs/arena.h"

#include <cstdio>
#include <string_view>

#include "core/solver_registry.h"
#include "util/check.h"

namespace dcolor {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Strict (colors, rounds, bits) Pareto dominance over valid rows.
bool dominates(const BatchJobResult& a, const BatchJobResult& b) {
  const bool le = a.colors_used <= b.colors_used &&
                  a.metrics.rounds <= b.metrics.rounds &&
                  a.metrics.total_message_bits <= b.metrics.total_message_bits;
  const bool lt = a.colors_used < b.colors_used ||
                  a.metrics.rounds < b.metrics.rounds ||
                  a.metrics.total_message_bits < b.metrics.total_message_bits;
  return le && lt;
}

void mark_pareto(ArenaScenario& scenario) {
  for (ArenaRow& row : scenario.rows) {
    if (!row.result.valid || !row.result.error.empty()) continue;
    row.pareto = true;
    for (const ArenaRow& other : scenario.rows) {
      if (&other == &row || !other.result.valid ||
          !other.result.error.empty())
        continue;
      if (dominates(other.result, row.result)) {
        row.pareto = false;
        break;
      }
    }
  }
}

}  // namespace

ArenaReport run_arena(const ArenaOptions& options) {
  DCOLOR_CHECK_MSG(!options.generators.empty() && !options.sizes.empty() &&
                       !options.degrees.empty(),
                   "arena needs a non-empty generator/n/degree matrix");
  std::vector<std::string> solver_names = options.solvers;
  if (solver_names.empty()) {
    for (const Solver* s : SolverRegistry::get().solvers()) {
      solver_names.emplace_back(s->name());
    }
  } else {
    for (const std::string& name : solver_names) {
      SolverRegistry::get().require(name);  // fail fast on typos
    }
  }

  ArenaReport report;
  report.seed = options.seed;
  report.sim_engine = options.sim_engine;

  std::vector<BatchJob> jobs;
  for (const std::string& gen : options.generators) {
    for (const NodeId n : options.sizes) {
      for (const int degree : options.degrees) {
        ArenaScenario scenario;
        scenario.generator = gen;
        scenario.n = n;
        scenario.degree = degree;
        report.scenarios.push_back(std::move(scenario));
        for (const std::string& solver : solver_names) {
          BatchJob job;
          job.solver = solver;
          job.generator = gen;
          job.n = n;
          job.degree = degree;
          // One seed per scenario, shared by every solver: they all
          // color the SAME graph, so the rows are comparable.
          job.seed = options.seed;
          job.sim_engine = options.sim_engine;
          job.label = solver;
          jobs.push_back(std::move(job));
        }
      }
    }
  }

  BatchOptions batch_options;
  batch_options.threads = options.threads;
  batch_options.check = options.check;
  const BatchReport batch = run_batch(jobs, batch_options);
  report.jobs_valid = batch.jobs_valid;
  report.jobs_failed = batch.jobs_failed;

  std::size_t next = 0;
  for (ArenaScenario& scenario : report.scenarios) {
    scenario.rows.resize(solver_names.size());
    for (ArenaRow& row : scenario.rows) row.result = batch.jobs[next++];
    mark_pareto(scenario);
  }
  return report;
}

std::string ArenaReport::to_markdown() const {
  std::string out;
  out += "# dcolor arena (seed " + std::to_string(seed) + ", engine " +
         std::string(engine_name(sim_engine)) + ")\n\n";
  out += "Pareto front per scenario over (colors, rounds, message bits), "
         "minimized across valid rows; `*` marks front rows. Wall time is "
         "nondeterministic; every other column is bit-identical at any "
         "thread count and engine.\n";
  for (const ArenaScenario& s : scenarios) {
    out += "\n## " + s.generator + " n=" + std::to_string(s.n) +
           " deg=" + std::to_string(s.degree) + "\n\n";
    out += "| solver | ok | colors | rounds | msg bits | mem KiB | wall ms "
           "| front |\n";
    out += "|---|---|---:|---:|---:|---:|---:|:---:|\n";
    std::string notes;
    for (const ArenaRow& row : s.rows) {
      const BatchJobResult& r = row.result;
      const bool ok = r.valid && r.error.empty();
      char line[256];
      if (ok) {
        std::snprintf(line, sizeof line,
                      "| %s | yes | %lld | %lld | %lld | %.1f | %.2f | %s |\n",
                      r.solver.c_str(),
                      static_cast<long long>(r.colors_used),
                      static_cast<long long>(r.metrics.rounds),
                      static_cast<long long>(r.metrics.total_message_bits),
                      static_cast<double>(r.palette_bytes) / 1024.0,
                      static_cast<double>(r.t.wall_ns) / 1e6,
                      row.pareto ? "*" : "");
      } else {
        std::snprintf(line, sizeof line,
                      "| %s | no | - | - | - | - | - |  |\n",
                      r.solver.c_str());
        if (!r.error.empty()) {
          notes += "- `" + r.solver + "`: " + r.error + "\n";
        }
      }
      out += line;
    }
    if (!notes.empty()) out += "\n" + notes;
  }
  char tail[96];
  std::snprintf(tail, sizeof tail, "\n%lld rows valid, %lld not run.\n",
                static_cast<long long>(jobs_valid),
                static_cast<long long>(jobs_failed));
  out += tail;
  return out;
}

std::string ArenaReport::to_json() const {
  std::string out = "{\n  \"seed\": " + std::to_string(seed);
  out += ",\n  \"engine\": ";
  append_json_string(out, engine_name(sim_engine));
  out += ",\n  \"scenarios\": [\n";
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const ArenaScenario& s = scenarios[si];
    out += "    {\"generator\": ";
    append_json_string(out, s.generator);
    out += ", \"n\": " + std::to_string(s.n);
    out += ", \"degree\": " + std::to_string(s.degree);
    out += ", \"rows\": [\n";
    for (std::size_t ri = 0; ri < s.rows.size(); ++ri) {
      const BatchJobResult& r = s.rows[ri].result;
      out += "      {\"solver\": ";
      append_json_string(out, r.solver);
      out += ", \"valid\": ";
      out += (r.valid && r.error.empty()) ? "true" : "false";
      out += ", \"colors\": " + std::to_string(r.colors_used);
      out += ", \"rounds\": " + std::to_string(r.metrics.rounds);
      out += ", \"bits\": " + std::to_string(r.metrics.total_message_bits);
      out += ", \"palette_bytes\": " + std::to_string(r.palette_bytes);
      {
        char hash[32];
        std::snprintf(hash, sizeof hash, "\"%016llx\"",
                      static_cast<unsigned long long>(r.color_hash));
        out += ", \"color_hash\": ";
        out += hash;
      }
      out += ", \"pareto\": ";
      out += s.rows[ri].pareto ? "true" : "false";
      if (!r.error.empty()) {
        out += ", \"error\": ";
        append_json_string(out, r.error);
      }
      // Last key by convention: strip `"t"` for cross-run comparison.
      char t[96];
      std::snprintf(t, sizeof t,
                    ", \"t\": {\"wall_ms\": %.3f, \"rss_mib\": %.1f}",
                    static_cast<double>(r.t.wall_ns) / 1e6,
                    static_cast<double>(r.t.rss_bytes) / (1024.0 * 1024.0));
      out += t;
      out += ri + 1 < s.rows.size() ? "},\n" : "}\n";
    }
    out += "    ]";
    out += si + 1 < scenarios.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"summary\": {\"scenarios\": " +
         std::to_string(scenarios.size());
  out += ", \"valid\": " + std::to_string(jobs_valid);
  out += ", \"failed\": " + std::to_string(jobs_failed);
  out += "}\n}\n";
  return out;
}

}  // namespace dcolor
