#include "obs/stats.h"

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>

#include "core/palette_store.h"
#include "util/check.h"
#include "util/rss.h"

namespace dcolor {
namespace {

thread_local StatsRegistry* t_current_stats = nullptr;

/// Upper bound (Prometheus `le`) of histogram bucket i: 2^i - 1.
std::int64_t bucket_le(int i) noexcept {
  if (i >= 63) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << i) - 1;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace

void StatHistogram::record(std::int64_t v) noexcept {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  const int idx =
      v <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(v));
  buckets[static_cast<std::size_t>(idx >= kBuckets ? kBuckets - 1 : idx)]++;
}

StatsRegistry::~StatsRegistry() {
  if (installed_) uninstall();
}

void StatsRegistry::install() {
  DCOLOR_CHECK_MSG(!installed_, "StatsRegistry installed twice");
  prev_ = t_current_stats;
  t_current_stats = this;
  installed_ = true;
}

void StatsRegistry::uninstall() {
  DCOLOR_CHECK_MSG(installed_, "uninstall without install");
  DCOLOR_CHECK_MSG(t_current_stats == this,
                   "StatsRegistry uninstall on a different thread or out of "
                   "nesting order");
  t_current_stats = prev_;
  prev_ = nullptr;
  installed_ = false;
}

StatsRegistry* StatsRegistry::current() noexcept { return t_current_stats; }

StatCounter& StatsRegistry::counter(std::string_view name, StatDomain domain) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name), Entry<StatCounter>{domain, {}})
             .first;
  }
  return it->second.metric;
}

StatGauge& StatsRegistry::gauge(std::string_view name, StatDomain domain) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name), Entry<StatGauge>{domain, {}})
             .first;
  }
  return it->second.metric;
}

StatHistogram& StatsRegistry::histogram(std::string_view name,
                                        StatDomain domain) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .try_emplace(std::string(name), Entry<StatHistogram>{domain, {}})
             .first;
  }
  return it->second.metric;
}

void StatsRegistry::observe_palettes(const PaletteStore& store,
                                     std::string_view prefix) {
  std::string name(prefix);
  const std::size_t base = name.size();
  const auto set = [&](std::string_view suffix, std::int64_t v,
                       StatDomain domain) {
    name.resize(base);
    name += suffix;
    gauge(name, domain).set(v);
  };
  set(".nodes", static_cast<std::int64_t>(store.size()), StatDomain::kStable);
  set(".num_palettes", static_cast<std::int64_t>(store.num_palettes()),
      StatDomain::kStable);
  set(".arena_entries", store.arena_entries(), StatDomain::kStable);
  set(".dedup_hits", store.dedup_hits(), StatDomain::kStable);
  set(".content_bytes", store.content_bytes(), StatDomain::kStable);
  // Capacity-based: leased arenas keep capacity from earlier jobs, so
  // this depends on the reuse schedule — quarantined like wall clocks.
  set(".arena_bytes", store.memory_bytes(), StatDomain::kTiming);
}

void StatsRegistry::sample_rss() {
  gauge("mem.current_rss_bytes", StatDomain::kTiming).set(current_rss_bytes());
  gauge("mem.peak_rss_bytes", StatDomain::kTiming).set(peak_rss_bytes());
  const PageFaults pf = page_faults();
  gauge("mem.page_faults_minor", StatDomain::kTiming).set(pf.minor);
  gauge("mem.page_faults_major", StatDomain::kTiming).set(pf.major);
}

std::string StatsRegistry::to_json(StatDomain max_domain) const {
  std::string out;
  out.reserve(256);

  const auto emit_domain = [&](StatDomain d) {
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [name, e] : counters_) {
      if (e.domain != d) continue;
      if (!first) out += ',';
      first = false;
      append_json_string(out, name);
      out += ':';
      append_int(out, e.metric.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, e] : gauges_) {
      if (e.domain != d) continue;
      if (!first) out += ',';
      first = false;
      append_json_string(out, name);
      out += ":{\"value\":";
      append_int(out, e.metric.value);
      out += ",\"peak\":";
      append_int(out, e.metric.peak);
      out += '}';
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, e] : histograms_) {
      if (e.domain != d) continue;
      if (!first) out += ',';
      first = false;
      append_json_string(out, name);
      const StatHistogram& h = e.metric;
      out += ":{\"count\":";
      append_int(out, h.count);
      out += ",\"sum\":";
      append_int(out, h.sum);
      out += ",\"min\":";
      append_int(out, h.count > 0 ? h.min : 0);
      out += ",\"max\":";
      append_int(out, h.max);
      out += ",\"buckets\":[";
      bool bfirst = true;
      for (int i = 0; i < StatHistogram::kBuckets; ++i) {
        const std::int64_t c = h.buckets[static_cast<std::size_t>(i)];
        if (c == 0) continue;
        if (!bfirst) out += ',';
        bfirst = false;
        out += '[';
        append_int(out, bucket_le(i));
        out += ',';
        append_int(out, c);
        out += ']';
      }
      out += "]}";
    }
    out += '}';
  };

  out += '{';
  emit_domain(StatDomain::kStable);
  if (max_domain >= StatDomain::kEngine) {
    out += ",\"engine\":{";
    emit_domain(StatDomain::kEngine);
    out += '}';
  }
  if (max_domain >= StatDomain::kTiming) {
    out += ",\"t\":{";
    emit_domain(StatDomain::kTiming);
    out += '}';
  }
  out += "}\n";
  return out;
}

namespace {

/// `sim.round_sent_bits` -> `dcolor_sim_round_sent_bits`.
std::string prometheus_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string StatsRegistry::to_prometheus(std::string_view prefix) const {
  std::string out;
  out.reserve(512);
  for (const auto& [name, e] : counters_) {
    const std::string pn = prometheus_name(prefix, name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + ' ' + std::to_string(e.metric.value) + '\n';
  }
  for (const auto& [name, e] : gauges_) {
    const std::string pn = prometheus_name(prefix, name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + ' ' + std::to_string(e.metric.value) + '\n';
    out += "# TYPE " + pn + "_peak gauge\n";
    out += pn + "_peak " + std::to_string(e.metric.peak) + '\n';
  }
  for (const auto& [name, e] : histograms_) {
    const std::string pn = prometheus_name(prefix, name);
    const StatHistogram& h = e.metric;
    out += "# TYPE " + pn + " histogram\n";
    int top = -1;
    for (int i = 0; i < StatHistogram::kBuckets; ++i) {
      if (h.buckets[static_cast<std::size_t>(i)] != 0) top = i;
    }
    std::int64_t cumulative = 0;
    for (int i = 0; i <= top; ++i) {
      cumulative += h.buckets[static_cast<std::size_t>(i)];
      out += pn + "_bucket{le=\"" + std::to_string(bucket_le(i)) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += pn + "_sum " + std::to_string(h.sum) + '\n';
    out += pn + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

void write_stats_file(const StatsRegistry& stats, const std::string& format,
                      const std::string& path) {
  std::string payload;
  if (format == "json") {
    payload = stats.to_json();
  } else if (format == "prom" || format == "prometheus") {
    payload = stats.to_prometheus();
  } else {
    DCOLOR_CHECK_MSG(false, "unknown stats format \""
                                << format << "\" (json, prom, prometheus)");
  }
  std::ofstream ofs(path, std::ios::binary);
  DCOLOR_CHECK_MSG(ofs.good(), "cannot open stats file " << path);
  ofs << payload;
  DCOLOR_CHECK_MSG(ofs.good(), "write failed for stats file " << path);
}

}  // namespace dcolor
