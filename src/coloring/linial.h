// Linial's O(log* n)-round O(β²)-coloring of oriented graphs [Lin87].
//
// Starting from any proper q-coloring (typically the unique IDs, q = n),
// iterated polynomial reduction yields a proper coloring with
// (2β+1)²-ish colors after O(log* q) rounds. This is the standard initial
// coloring for everything else in the library (Theorems 1.1–1.5 all
// assume "equipped with a proper q-coloring").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/metrics.h"

namespace dcolor {

struct LinialResult {
  std::vector<Color> colors;   ///< proper coloring, values in [0, num_colors)
  std::int64_t num_colors = 0; ///< size of the final color space (O(β²))
  RoundMetrics metrics;        ///< O(log* q) rounds
};

/// Reduces a proper q-coloring to an O(β²)-coloring, where β is the max
/// outdegree of `o`.
LinialResult linial_coloring(const Graph& g, const Orientation& o,
                             const std::vector<Color>& initial,
                             std::uint64_t q);

/// Convenience: start from the unique node IDs (q = n).
LinialResult linial_from_ids(const Graph& g, const Orientation& o);

}  // namespace dcolor
