#include "coloring/color_reduction.h"

#include <algorithm>

#include "coloring/linial.h"
#include "graph/orientation.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

namespace {

/// One color class per round: in round r, nodes colored C−r recolor to a
/// free color below the target.
class ReductionProgram final : public SyncAlgorithm {
 public:
  ReductionProgram(const Graph& g, const std::vector<Color>& initial,
                   std::int64_t c, std::int64_t target)
      : graph_(&g), c_(c), target_(target), color_(initial) {
    // Flat per-CSR-slot storage of the last color heard from each
    // neighbor: slot i of node v is the i-th entry of the (sorted)
    // neighbor list, found by binary search on ingest — no per-node hash
    // maps, no rehashing in the recolor loop.
    const auto n = static_cast<std::size_t>(g.num_nodes());
    slot_offset_.resize(n + 1);
    slot_offset_[0] = 0;
    for (std::size_t v = 0; v < n; ++v) {
      slot_offset_[v + 1] =
          slot_offset_[v] + g.degree(static_cast<NodeId>(v));
    }
    neighbor_color_.assign(static_cast<std::size_t>(slot_offset_[n]),
                           kNoColor);
    finished_.assign(n, c_ <= target_ ? 1 : 0);
  }

  void init(NodeId v, Mailbox& mail) override {
    if (c_ <= target_) return;
    Message m;
    m.push(color_[static_cast<std::size_t>(v)], color_bits());
    broadcast(*graph_, mail, m);
  }

  void step(NodeId v, int round, Mailbox& mail) override {
    const auto vi = static_cast<std::size_t>(v);
    const auto nbrs = graph_->neighbors(v);
    Color* const slots = neighbor_color_.data() + slot_offset_[vi];
    for (const Envelope& env : mail.inbox()) {
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), env.from);
      slots[it - nbrs.begin()] = env.message.field(0);
    }
    const std::int64_t eliminating = c_ - round;  // class handled this round
    if (color_[vi] == eliminating && eliminating >= target_) {
      // Pick the smallest color in [0, target) unused by the neighbors;
      // exists because target >= Δ+1.
      std::vector<bool> used(static_cast<std::size_t>(graph_->degree(v)) + 1,
                             false);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Color cu = slots[i];
        if (cu >= 0 && cu <= graph_->degree(v)) {
          used[static_cast<std::size_t>(cu)] = true;
        }
      }
      Color pick = 0;
      while (used[static_cast<std::size_t>(pick)]) ++pick;
      DCOLOR_CHECK(pick < target_);
      color_[vi] = pick;
      Message m;
      m.push(pick, color_bits());
      broadcast(*graph_, mail, m);
    }
    if (eliminating <= target_) finished_[vi] = 1;
  }

  bool done(NodeId v) const override {
    return finished_[static_cast<std::size_t>(v)] != 0;
  }

  /// Sparse scheduling: a node acts at its recoloring turn (round
  /// c − color, while it still holds a color ≥ target) and must be stepped
  /// once more at round c − target, where every node marks itself done.
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override {
    const auto vi = static_cast<std::size_t>(v);
    if (finished_[vi] != 0) return kNoWakeup;
    if (color_[vi] >= target_) {
      const std::int64_t turn = c_ - static_cast<std::int64_t>(color_[vi]);
      if (after_round < turn) return turn;
    }
    const std::int64_t finish = c_ - target_;
    return after_round < finish ? finish : kNoWakeup;
  }

  const std::vector<Color>& colors() const noexcept { return color_; }

 private:
  int color_bits() const noexcept {
    return std::max(1, ceil_log2(static_cast<std::uint64_t>(
                            std::max<std::int64_t>(2, c_))));
  }

  const Graph* graph_;
  std::int64_t c_;
  std::int64_t target_;
  std::vector<Color> color_;
  std::vector<std::int64_t> slot_offset_;  // CSR offsets into neighbor_color_
  std::vector<Color> neighbor_color_;      // one slot per (node, neighbor)
  std::vector<std::uint8_t> finished_;  // not vector<bool>: per-node bytes
                                        // are data-race-free when stepped
                                        // in parallel
};

}  // namespace

ColorReductionResult reduce_colors(const Graph& g,
                                   const std::vector<Color>& initial,
                                   std::int64_t c,
                                   std::int64_t target_colors) {
  DCOLOR_CHECK_MSG(target_colors >= g.max_degree() + 1,
                   "greedy reduction needs target >= Δ+1");
  DCOLOR_CHECK(static_cast<NodeId>(initial.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color cv = initial[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(cv >= 0 && cv < c, "initial color out of range");
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial[static_cast<std::size_t>(u)] != cv,
                       "initial coloring not proper");
    }
  }
  ReductionProgram program(g, initial, c, target_colors);
  PhaseSpan phase("color_reduction");
  Network net(g);
  ColorReductionResult result;
  result.metrics = net.run(program, std::max<std::int64_t>(4, c + 4));
  result.colors = program.colors();
  return result;
}

ColorReductionResult linial_plus_reduction(const Graph& g) {
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  ColorReductionResult result = reduce_colors(
      g, linial.colors, linial.num_colors, g.max_degree() + 1);
  result.metrics += linial.metrics;
  return result;
}

}  // namespace dcolor
