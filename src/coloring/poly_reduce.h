// Shared polynomial color-reduction engine.
//
// Both Linial's O(log* n) proper coloring [Lin87] and the Lemma 3.4
// defective coloring [Kuh09, KS18] iterate the same one-round step: view
// the current color c ∈ [0, Q) as a polynomial g_c of degree <= D over
// GF(k) (base-k digits of c), pick an evaluation point s ∈ GF(k), and
// re-color with (s, g_c(s)) ∈ [0, k²).
//
//  * Proper (Linial):  k > D·β guarantees a point s where g_v(s) differs
//    from every out-neighbor's polynomial; the new coloring is proper.
//  * Defective (Kuhn): k >= D/α_step guarantees a point s where at most
//    α_step·β_v out-neighbors' polynomials agree with g_v at s (currently
//    monochromatic out-neighbors always agree, so the per-iteration defect
//    growth is bounded by α_step·β_v on top of the existing defect).
//
// The (k, D) schedule is a pure function of (q, α_step, β), so every node
// derives it locally — no extra communication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/network.h"

namespace dcolor {

/// One iteration of the reduction: field size and polynomial degree.
struct PolyStep {
  std::uint64_t k = 0;  ///< prime field size; new color space is k²
  int degree = 0;       ///< polynomial degree bound D
};

/// The deterministic (k, D) schedule for reducing a q-sized color space.
/// alpha_step == 0 produces the proper (Linial) schedule, which needs the
/// maximum outdegree β; alpha_step > 0 produces a defective schedule with
/// a UNIFORM per-step defect budget (β-independent field sizes). Stops
/// when a step would not shrink the space. Schedule length is O(log* q).
std::vector<PolyStep> poly_schedule(std::uint64_t q, double alpha_step,
                                    int beta);

/// Defective schedule whose total added defect stays below alpha_total·β_v
/// by allocating the budget geometrically: the LAST step gets α/2, the
/// one before α/4, and so on. The last step dominates the final color
/// count, so this yields O((2/α)²) colors instead of the O((2H/α)²) a
/// uniform α/H split gives.
std::vector<PolyStep> poly_schedule_defective(std::uint64_t q,
                                              double alpha_total);

/// Iterated polynomial color reduction as a message-passing program.
/// After the run, `colors()` holds values in [0, final_space()).
///
/// Doubles as its own dense-round kernel (sim/engine.h): every message is
/// a one-field broadcast of the sender's current color, so the vector
/// path keeps a per-node color snapshot plus a send stamp instead of
/// materialized envelopes, and ingests by scanning out-neighbors for live
/// stamps. The collision argmin is a per-point SUM over neighbors, hence
/// order-independent — neighbor-order ingestion is bit-identical to
/// inbox-order. GF evaluations go through util/simd.h when the field
/// fits the exact double-precision window (k < 2^25), on BOTH engines.
class PolyReduceProgram final : public SyncAlgorithm, public DenseKernel {
 public:
  /// `initial` must be a proper Q-coloring when `proper == true` (the
  /// program then checks each step finds a collision-free point); in the
  /// defective regime it may be any coloring (defects accumulate from it).
  /// With `undirected == true` every neighbor counts as an out-neighbor
  /// (the symmetric digraph, β_v = deg(v)): the result then bounds
  /// same-colored NEIGHBORS by α·deg(v) — the undirected reading of
  /// Lemma 3.4 that Section 4.2 relies on.
  PolyReduceProgram(const Graph& g, const Orientation& o,
                    const std::vector<Color>& initial, std::uint64_t q,
                    std::vector<PolyStep> schedule, bool proper,
                    bool undirected = false);

  void init(NodeId v, Mailbox& mail) override;
  void step(NodeId v, int round, Mailbox& mail) override;
  bool done(NodeId v) const override;

  const std::vector<Color>& colors() const noexcept { return color_; }
  std::uint64_t final_space() const noexcept { return space_; }
  int iterations() const noexcept { return static_cast<int>(schedule_.size()); }

  DenseKernel* dense_kernel() override { return this; }

  // ---- DenseKernel (see sim/engine.h for the contract) ----------------
  bool absorb(std::span<const Mailbox::Outgoing> queued) override;
  void spill(std::vector<Mailbox::Outgoing>& sink) override;
  std::int64_t pending_messages() const override { return pending_msgs_; }
  void deliver(std::int64_t round, std::vector<NodeId>& touched) override;
  void step_batch(std::int64_t round, std::span<const NodeId> active,
                  std::size_t lo, std::size_t hi, int message_bit_cap,
                  DenseChunk& chunk) override;
  void commit_senders(std::span<const NodeId> senders) override;

 private:
  void apply_step(NodeId v, const PolyStep& ps,
                  std::span<const Color> out_colors);

  const Graph* graph_;
  const Orientation* orientation_;
  bool proper_ = false;
  bool undirected_ = false;
  std::vector<PolyStep> schedule_;
  std::vector<std::uint64_t> spaces_;  ///< space size before each step
  std::uint64_t space_;                ///< final space size

  std::vector<Color> color_;
  std::vector<std::uint8_t> finished_;  // not vector<bool>: per-node bytes
                                        // are data-race-free when stepped
                                        // in parallel

  // ---- dense-kernel lanes (sized lazily on first absorb) --------------
  // A pending broadcast from v is (width lane != 0); its payload is
  // color_[v], snapshotted into read_color_ when deliver() retires it so
  // this round's re-coloring never races the payloads being read.
  std::vector<NodeId> pending_senders_;   ///< scalar-equivalent order
  std::vector<std::int8_t> pending_bits_; ///< per node; 0 = not pending
  std::vector<std::int64_t> read_round_;  ///< round the payload is live
  std::vector<Color> read_color_;         ///< payload snapshot
  std::vector<std::int64_t> touch_stamp_; ///< deliver() dedup scratch
  std::int64_t pending_msgs_ = 0;         ///< Σ deg over pending senders
};

}  // namespace dcolor
