// Registry adapters for the substrate colorings (coloring/): Linial's
// O(β²)-coloring and the Lemma 3.4 defective coloring. Both are
// graph-input solvers that start from unique IDs under the by-id
// orientation — useful as standalone CLI/batch targets and as the
// building blocks the core solvers compose.
#include <utility>

#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "core/solver_registry.h"
#include "util/check.h"

namespace dcolor {
namespace {

using Input = SolverCapabilities::Input;

class LinialSolver final : public Solver {
 public:
  std::string_view name() const override { return "linial"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kGraph;
    c.proper_output = true;
    return c;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.graph != nullptr, "linial needs a graph");
    const Orientation o = Orientation::by_id(*req.graph);
    LinialResult r = linial_from_ids(*req.graph, o);
    SolveResult out;
    out.colors = std::move(r.colors);
    out.metrics = r.metrics;
    ctx.metrics += r.metrics;
    return out;
  }
};

class KuhnDefectiveSolver final : public Solver {
 public:
  std::string_view name() const override { return "kuhn_defective"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kGraph;
    c.oriented = true;
    c.defects = true;  // output is α·β_v-defective, not proper
    return c;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.graph != nullptr, "kuhn_defective needs a graph");
    const Orientation o = Orientation::by_id(*req.graph);
    DefectiveColoringResult r =
        kuhn_defective_from_ids(*req.graph, o, req.params.alpha);
    SolveResult out;
    out.colors = std::move(r.colors);
    out.metrics = r.metrics;
    ctx.metrics += r.metrics;
    return out;
  }
};

}  // namespace

namespace detail {

void register_coloring_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<LinialSolver>());
  registry.add(std::make_unique<KuhnDefectiveSolver>(), {"kuhn"});
}

}  // namespace detail
}  // namespace dcolor
