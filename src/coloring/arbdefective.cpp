#include "coloring/arbdefective.h"

#include <algorithm>

#include "sim/network.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/math.h"

namespace dcolor {

namespace {

/// Message-passing sweep: in round c+1, nodes of initial color c pick the
/// least-used class among earlier-decided neighbors and announce it.
class SweepPartitionProgram final : public SyncAlgorithm {
 public:
  SweepPartitionProgram(const Graph& g, const std::vector<Color>& initial,
                        std::int64_t q, int k)
      : graph_(&g), initial_(&initial), q_(q), k_(k) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    counts_.assign(n, std::vector<int>(static_cast<std::size_t>(k), 0));
    chosen_.assign(n, kNoColor);
  }

  void init(NodeId, Mailbox&) override {}

  void step(NodeId v, int round, Mailbox& mail) override {
    const auto vi = static_cast<std::size_t>(v);
    for (const Envelope& env : mail.inbox()) {
      ++counts_[vi][static_cast<std::size_t>(env.message.field(0))];
    }
    if (round == static_cast<int>((*initial_)[vi]) + 1) {
      const auto& cnt = counts_[vi];
      const auto it = std::min_element(cnt.begin(), cnt.end());
      chosen_[vi] = static_cast<Color>(it - cnt.begin());
      Message m;
      m.push(chosen_[vi], std::max(1, ceil_log2(static_cast<std::uint64_t>(
                                           std::max(2, k_)))));
      broadcast(*graph_, mail, m);
    }
  }

  bool done(NodeId v) const override {
    return chosen_[static_cast<std::size_t>(v)] != kNoColor;
  }

  /// Sparse scheduling: one turn per node, at round initial color + 1;
  /// otherwise only message receipt needs a step.
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override {
    const std::int64_t turn =
        static_cast<std::int64_t>((*initial_)[static_cast<std::size_t>(v)]) +
        1;
    return after_round < turn ? turn : kNoWakeup;
  }

  const std::vector<Color>& chosen() const noexcept { return chosen_; }

 private:
  const Graph* graph_;
  const std::vector<Color>* initial_;
  std::int64_t q_;
  int k_;
  std::vector<std::vector<int>> counts_;
  std::vector<Color> chosen_;
};

}  // namespace

ArbPartitionResult arbdefective_partition(const Graph& g,
                                          const std::vector<Color>& initial,
                                          std::int64_t q, int k,
                                          PartitionEngine engine) {
  DCOLOR_CHECK(k >= 1);
  DCOLOR_CHECK(static_cast<NodeId>(initial.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = initial[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(c >= 0 && c < q, "initial color out of range");
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial[static_cast<std::size_t>(u)] != c,
                       "initial coloring not proper");
    }
  }

  ArbPartitionResult result;
  result.num_classes = k;

  if (engine == PartitionEngine::kHonest) {
    SweepPartitionProgram program(g, initial, q, k);
    Network net(g);
    result.metrics = net.run(program, q + 4);
    result.classes = program.chosen();
  } else {
    // Oracle engine: identical greedy rule executed centrally in sweep
    // order, charged O(k + log* q) rounds per [BEG18].
    std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      order[static_cast<std::size_t>(v)] = v;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const Color ca = initial[static_cast<std::size_t>(a)];
      const Color cb = initial[static_cast<std::size_t>(b)];
      return ca != cb ? ca < cb : a < b;
    });
    result.classes.assign(static_cast<std::size_t>(g.num_nodes()), kNoColor);
    for (NodeId v : order) {
      std::vector<int> cnt(static_cast<std::size_t>(k), 0);
      for (NodeId u : g.neighbors(v)) {
        const Color cu = result.classes[static_cast<std::size_t>(u)];
        if (cu != kNoColor &&
            initial[static_cast<std::size_t>(u)] <
                initial[static_cast<std::size_t>(v)]) {
          ++cnt[static_cast<std::size_t>(cu)];
        }
      }
      const auto it = std::min_element(cnt.begin(), cnt.end());
      result.classes[static_cast<std::size_t>(v)] =
          static_cast<Color>(it - cnt.begin());
    }
    result.metrics.rounds = k + 2 * log_star(static_cast<std::uint64_t>(
                                    std::max<std::int64_t>(2, q)));
    result.metrics.max_message_bits =
        std::max(1, ceil_log2(static_cast<std::uint64_t>(std::max(2, k))));
  }

  // Orient every edge toward the earlier-decided endpoint (smaller initial
  // color); out-defect is then the number of earlier same-class neighbors.
  result.orientation = Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    return initial[static_cast<std::size_t>(b)] <
           initial[static_cast<std::size_t>(a)];
  });
  return result;
}

}  // namespace dcolor
