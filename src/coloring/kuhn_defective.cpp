#include "coloring/kuhn_defective.h"

#include <algorithm>

#include "coloring/poly_reduce.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dcolor {

namespace {

DefectiveColoringResult run_defective(const Graph& g, const Orientation& o,
                                      const std::vector<Color>& initial,
                                      std::uint64_t q, double alpha,
                                      bool undirected) {
  DCOLOR_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha=" << alpha);
  // Geometric budget allocation: the last (smallest-space) step gets α/2,
  // so the final color count is O((2/α)²) with small constants.
  PolyReduceProgram program(g, o, initial, q, poly_schedule_defective(q, alpha),
                            /*proper=*/false, undirected);
  PhaseSpan phase("kuhn_defective");
  Network net(g);
  DefectiveColoringResult result;
  result.metrics = net.run(program, 8 + program.iterations());
  result.colors = program.colors();
  result.num_colors = static_cast<std::int64_t>(program.final_space());
  return result;
}

}  // namespace

DefectiveColoringResult kuhn_defective_coloring(
    const Graph& g, const Orientation& o, const std::vector<Color>& initial,
    std::uint64_t q, double alpha) {
  return run_defective(g, o, initial, q, alpha, /*undirected=*/false);
}

DefectiveColoringResult kuhn_defective_undirected(
    const Graph& g, const std::vector<Color>& initial, std::uint64_t q,
    double alpha) {
  const Orientation o = Orientation::by_id(g);  // unused in undirected mode
  return run_defective(g, o, initial, q, alpha, /*undirected=*/true);
}

DefectiveColoringResult kuhn_defective_from_ids(const Graph& g,
                                                const Orientation& o,
                                                double alpha) {
  std::vector<Color> ids(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    ids[static_cast<std::size_t>(v)] = v;
  return kuhn_defective_coloring(
      g, o, ids,
      std::max<std::uint64_t>(2, static_cast<std::uint64_t>(g.num_nodes())),
      alpha);
}

}  // namespace dcolor
