// One-sweep arbdefective partitions.
//
// Sweeping once over the classes of a proper q-coloring and letting each
// node pick the least-used of k classes among its already-decided
// neighbors yields a k-class coloring where every node has at most
// ⌊deg(v)/k⌋ same-class neighbors that decided earlier. Orienting every
// edge toward the earlier-decided endpoint makes this a
// ⌊deg(v)/k⌋-arbdefective k-coloring — the classic "greedy arbdefective"
// construction (introduction of Section 1, [BE10]).
//
// Engines:
//  * Honest      — genuine message-passing sweep, O(q) rounds.
//  * Beg18Oracle — the partition is computed centrally with the identical
//    greedy rule and charged O(k + log* q) rounds, the bound proved for
//    the locally-iterative arbdefective algorithms of [BEG18]. This is the
//    documented substitution from DESIGN.md §4: the output satisfies
//    exactly the guarantee the published primitive proves, so downstream
//    behaviour is preserved while the round charge follows the literature.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/metrics.h"

namespace dcolor {

enum class PartitionEngine {
  kHonest,
  kBeg18Oracle,
};

struct ArbPartitionResult {
  std::vector<Color> classes;  ///< values in [0, num_classes)
  Orientation orientation;     ///< toward earlier-decided nodes
  std::int64_t num_classes = 0;
  RoundMetrics metrics;
};

/// Partition into k classes with out-defect <= ⌊deg(v)/k⌋ under the
/// returned orientation. `initial` must be a proper coloring in [0, q).
ArbPartitionResult arbdefective_partition(const Graph& g,
                                          const std::vector<Color>& initial,
                                          std::int64_t q, int k,
                                          PartitionEngine engine);

}  // namespace dcolor
