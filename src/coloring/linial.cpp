#include "coloring/linial.h"

#include <algorithm>
#include <cmath>

#include "coloring/poly_reduce.h"
#include "util/check.h"
#include "util/gf.h"
#include "util/math.h"

namespace dcolor {

std::vector<PolyStep> poly_schedule(std::uint64_t q, double alpha_step,
                                    int beta) {
  DCOLOR_CHECK(alpha_step >= 0.0);
  DCOLOR_CHECK(beta >= 1);
  std::vector<PolyStep> schedule;
  std::uint64_t space = std::max<std::uint64_t>(2, q);
  for (int guard = 0; guard < 64; ++guard) {
    // Find the smallest prime k whose induced degree D = coeffs(space,k)-1
    // satisfies the step condition. The required k shrinks as k grows
    // (D is non-increasing in k), so the first feasible prime in an
    // ascending scan is minimal — and a minimal k means a maximal shrink.
    std::uint64_t k = 2;
    int degree = 0;
    for (;;) {
      degree = coeffs_needed(space, k) - 1;
      std::uint64_t need;
      if (alpha_step == 0.0) {
        need = static_cast<std::uint64_t>(degree) *
                   static_cast<std::uint64_t>(beta) +
               1;
      } else {
        need = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(std::max(degree, 1)) / alpha_step));
      }
      need = std::max<std::uint64_t>(need, 2);
      if (k >= need) break;
      k = next_prime(k + 1);
    }
    if (k * k >= space) break;  // no further progress possible
    schedule.push_back({k, degree});
    space = k * k;
  }
  return schedule;
}

std::vector<PolyStep> poly_schedule_defective(std::uint64_t q,
                                              double alpha_total) {
  DCOLOR_CHECK(alpha_total > 0.0);
  // The geometric allocation needs the schedule length H up front (step i
  // of H gets α·2^{i-H}); H itself depends on the allocation, so iterate
  // until the length stabilizes. Falls back to the last candidate if it
  // oscillates (still within budget: the geometric series never exceeds α).
  std::size_t h = 1;
  std::vector<PolyStep> schedule;
  for (int attempt = 0; attempt < 12; ++attempt) {
    schedule.clear();
    std::uint64_t space = std::max<std::uint64_t>(2, q);
    for (std::size_t i = 0; i < h + 8; ++i) {
      const std::size_t from_end = h > i ? h - i : 1;  // 1 for the last step
      const double alpha_i =
          alpha_total / static_cast<double>(std::uint64_t{1} << std::min<
                                            std::size_t>(from_end, 40));
      const auto step = poly_schedule(space, alpha_i, 1);
      if (step.empty()) break;  // no shrinking step exists at this budget
      schedule.push_back(step.front());
      space = step.front().k * step.front().k;
    }
    if (schedule.size() == h) return schedule;
    h = std::max<std::size_t>(1, schedule.size());
  }
  // Oscillation fallback: a uniform split over a generous step budget is
  // always within the total budget.
  return poly_schedule(q, alpha_total / 8.0, 1);
}

PolyReduceProgram::PolyReduceProgram(const Graph& g, const Orientation& o,
                                     const std::vector<Color>& initial,
                                     std::uint64_t q,
                                     std::vector<PolyStep> schedule,
                                     bool proper, bool undirected)
    : graph_(&g),
      orientation_(&o),
      proper_(proper),
      undirected_(undirected),
      schedule_(std::move(schedule)),
      color_(initial),
      finished_(static_cast<std::size_t>(g.num_nodes()), false) {
  DCOLOR_CHECK(static_cast<NodeId>(initial.size()) == g.num_nodes());
  for (Color c : initial) {
    DCOLOR_CHECK_MSG(c >= 0 && static_cast<std::uint64_t>(c) < q,
                     "initial color " << c << " outside [0," << q << ")");
  }
  spaces_.clear();
  std::uint64_t space = std::max<std::uint64_t>(2, q);
  for (const auto& ps : schedule_) {
    spaces_.push_back(space);
    space = ps.k * ps.k;
  }
  space_ = space;
  if (schedule_.empty()) {
    finished_.assign(finished_.size(), true);
  }
}

void PolyReduceProgram::init(NodeId v, Mailbox& mail) {
  if (schedule_.empty()) return;
  Message m;
  m.push(color_[static_cast<std::size_t>(v)],
         std::max(1, ceil_log2(spaces_.front())));
  broadcast(*graph_, mail, m);
}

void PolyReduceProgram::apply_step(
    NodeId v, const PolyStep& ps,
    const std::vector<std::pair<NodeId, Color>>& out_colors) {
  const auto vi = static_cast<std::size_t>(v);
  const GfPoly mine = encode_as_polynomial(
      static_cast<std::uint64_t>(color_[vi]), ps.k, ps.degree + 1);
  std::vector<GfPoly> others;
  others.reserve(out_colors.size());
  for (const auto& [u, c] : out_colors) {
    others.push_back(encode_as_polynomial(static_cast<std::uint64_t>(c), ps.k,
                                          ps.degree + 1));
  }
  // Pick the evaluation point with the fewest value-agreements among
  // out-neighbors (zero agreements exist in the proper regime).
  std::uint64_t best_s = 0;
  std::int64_t best_collisions = -1;
  for (std::uint64_t s = 0; s < ps.k; ++s) {
    const std::uint64_t mine_at_s = mine.eval(s);
    std::int64_t collisions = 0;
    for (const auto& poly : others) {
      if (poly.eval(s) == mine_at_s) ++collisions;
    }
    if (best_collisions < 0 || collisions < best_collisions) {
      best_collisions = collisions;
      best_s = s;
    }
    if (collisions == 0 && proper_) {
      best_s = s;
      best_collisions = 0;
      break;
    }
  }
  if (proper_) {
    DCOLOR_CHECK_MSG(best_collisions == 0,
                     "Linial step found no collision-free point at node "
                         << v << " (k=" << ps.k << ", D=" << ps.degree << ")");
  }
  color_[vi] = static_cast<Color>(best_s * ps.k + mine.eval(best_s));
}

void PolyReduceProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  const int idx = round - 1;  // schedule index executed this round
  if (idx >= static_cast<int>(schedule_.size())) {
    finished_[vi] = true;
    return;
  }
  // Collect the current colors of OUT-neighbors (all neighbors in the
  // undirected mode) from the inbox.
  std::vector<std::pair<NodeId, Color>> out_colors;
  for (const Envelope& env : mail.inbox()) {
    if (undirected_ || orientation_->is_out_edge(v, env.from)) {
      out_colors.emplace_back(env.from, env.message.field(0));
    }
  }
  apply_step(v, schedule_[static_cast<std::size_t>(idx)], out_colors);

  if (idx + 1 < static_cast<int>(schedule_.size())) {
    Message m;
    m.push(color_[vi],
           std::max(1, ceil_log2(spaces_[static_cast<std::size_t>(idx) + 1])));
    broadcast(*graph_, mail, m);
  } else {
    finished_[vi] = true;
  }
}

bool PolyReduceProgram::done(NodeId v) const {
  return finished_[static_cast<std::size_t>(v)];
}

LinialResult linial_coloring(const Graph& g, const Orientation& o,
                             const std::vector<Color>& initial,
                             std::uint64_t q) {
  PolyReduceProgram program(g, o, initial, q, poly_schedule(q, 0.0, o.beta()),
                            /*proper=*/true);
  Network net(g);
  LinialResult result;
  result.metrics = net.run(program, 8 + program.iterations());
  result.colors = program.colors();
  result.num_colors = static_cast<std::int64_t>(program.final_space());
  return result;
}

LinialResult linial_from_ids(const Graph& g, const Orientation& o) {
  std::vector<Color> ids(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    ids[static_cast<std::size_t>(v)] = v;
  return linial_coloring(g, o, ids,
                         std::max<std::uint64_t>(
                             2, static_cast<std::uint64_t>(g.num_nodes())));
}

}  // namespace dcolor
