#include "coloring/linial.h"

#include <algorithm>
#include <cmath>

#include "coloring/poly_reduce.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/gf.h"
#include "util/math.h"
#include "util/simd.h"

namespace dcolor {

std::vector<PolyStep> poly_schedule(std::uint64_t q, double alpha_step,
                                    int beta) {
  DCOLOR_CHECK(alpha_step >= 0.0);
  DCOLOR_CHECK(beta >= 1);
  std::vector<PolyStep> schedule;
  std::uint64_t space = std::max<std::uint64_t>(2, q);
  for (int guard = 0; guard < 64; ++guard) {
    // Find the smallest prime k whose induced degree D = coeffs(space,k)-1
    // satisfies the step condition. The required k shrinks as k grows
    // (D is non-increasing in k), so the first feasible prime in an
    // ascending scan is minimal — and a minimal k means a maximal shrink.
    std::uint64_t k = 2;
    int degree = 0;
    for (;;) {
      degree = coeffs_needed(space, k) - 1;
      std::uint64_t need;
      if (alpha_step == 0.0) {
        need = static_cast<std::uint64_t>(degree) *
                   static_cast<std::uint64_t>(beta) +
               1;
      } else {
        need = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(std::max(degree, 1)) / alpha_step));
      }
      need = std::max<std::uint64_t>(need, 2);
      if (k >= need) break;
      k = next_prime(k + 1);
    }
    if (k * k >= space) break;  // no further progress possible
    schedule.push_back({k, degree});
    space = k * k;
  }
  return schedule;
}

std::vector<PolyStep> poly_schedule_defective(std::uint64_t q,
                                              double alpha_total) {
  DCOLOR_CHECK(alpha_total > 0.0);
  // The geometric allocation needs the schedule length H up front (step i
  // of H gets α·2^{i-H}); H itself depends on the allocation, so iterate
  // until the length stabilizes. Falls back to the last candidate if it
  // oscillates (still within budget: the geometric series never exceeds α).
  std::size_t h = 1;
  std::vector<PolyStep> schedule;
  for (int attempt = 0; attempt < 12; ++attempt) {
    schedule.clear();
    std::uint64_t space = std::max<std::uint64_t>(2, q);
    for (std::size_t i = 0; i < h + 8; ++i) {
      const std::size_t from_end = h > i ? h - i : 1;  // 1 for the last step
      const double alpha_i =
          alpha_total / static_cast<double>(std::uint64_t{1} << std::min<
                                            std::size_t>(from_end, 40));
      const auto step = poly_schedule(space, alpha_i, 1);
      if (step.empty()) break;  // no shrinking step exists at this budget
      schedule.push_back(step.front());
      space = step.front().k * step.front().k;
    }
    if (schedule.size() == h) return schedule;
    h = std::max<std::size_t>(1, schedule.size());
  }
  // Oscillation fallback: a uniform split over a generous step budget is
  // always within the total budget.
  return poly_schedule(q, alpha_total / 8.0, 1);
}

PolyReduceProgram::PolyReduceProgram(const Graph& g, const Orientation& o,
                                     const std::vector<Color>& initial,
                                     std::uint64_t q,
                                     std::vector<PolyStep> schedule,
                                     bool proper, bool undirected)
    : graph_(&g),
      orientation_(&o),
      proper_(proper),
      undirected_(undirected),
      schedule_(std::move(schedule)),
      color_(initial),
      finished_(static_cast<std::size_t>(g.num_nodes()), 0) {
  DCOLOR_CHECK(static_cast<NodeId>(initial.size()) == g.num_nodes());
  for (Color c : initial) {
    DCOLOR_CHECK_MSG(c >= 0 && static_cast<std::uint64_t>(c) < q,
                     "initial color " << c << " outside [0," << q << ")");
  }
  spaces_.clear();
  std::uint64_t space = std::max<std::uint64_t>(2, q);
  for (const auto& ps : schedule_) {
    spaces_.push_back(space);
    space = ps.k * ps.k;
  }
  space_ = space;
  if (schedule_.empty()) {
    finished_.assign(finished_.size(), 1);
  }
}

void PolyReduceProgram::init(NodeId v, Mailbox& mail) {
  if (schedule_.empty()) return;
  Message m;
  m.push(color_[static_cast<std::size_t>(v)],
         std::max(1, ceil_log2(spaces_.front())));
  broadcast(*graph_, mail, m);
}

void PolyReduceProgram::apply_step(NodeId v, const PolyStep& ps,
                                   std::span<const Color> out_colors) {
  const auto vi = static_cast<std::size_t>(v);
  const int nc = ps.degree + 1;
  DCOLOR_CHECK(nc <= 64);
  // Base-p digits of every polynomial are extracted ONCE into stack /
  // thread-local scratch; points are then evaluated by Horner over the
  // digit arrays. Identical arithmetic to eval_encoded per point, without
  // re-dividing the color value at every point — and without the per-step
  // heap allocation a GfPoly would cost.
  std::uint64_t mine_digits[64];
  {
    std::uint64_t value = static_cast<std::uint64_t>(color_[vi]);
    for (int i = 0; i < nc; ++i) {
      mine_digits[static_cast<std::size_t>(i)] = value % ps.k;
      value /= ps.k;
    }
    DCOLOR_CHECK_MSG(value == 0, "color does not fit in k^(D+1) at node "
                                     << v << " (k=" << ps.k << ")");
  }
  const std::size_t rows = out_colors.size();
  // Small fields take the SIMD-friendly point counter: neighbor digits are
  // laid out TRANSPOSED (digit i of neighbor j at [i*rows + j]) so each
  // Horner level is one contiguous load, and simd::count_eval_eq tallies
  // agreements for all neighbors at once. Exactness: both its paths
  // compute the true mod (see util/simd.h), so the counts — and therefore
  // the argmin below — match the eval_digits loop bit for bit.
  const bool fast = simd::gf_eval_supported(ps.k);
  static thread_local std::vector<std::int32_t> tdigits;
  static thread_local std::vector<std::uint64_t> nbr_digits;
  if (fast) {
    tdigits.resize(rows * static_cast<std::size_t>(nc));
    for (std::size_t j = 0; j < rows; ++j) {
      std::uint64_t value = static_cast<std::uint64_t>(out_colors[j]);
      for (int i = 0; i < nc; ++i) {
        tdigits[static_cast<std::size_t>(i) * rows + j] =
            static_cast<std::int32_t>(value % ps.k);
        value /= ps.k;
      }
    }
  } else {
    nbr_digits.resize(rows * static_cast<std::size_t>(nc));
    for (std::size_t j = 0; j < rows; ++j) {
      std::uint64_t value = static_cast<std::uint64_t>(out_colors[j]);
      std::uint64_t* d = nbr_digits.data() + j * static_cast<std::size_t>(nc);
      for (int i = 0; i < nc; ++i) {
        d[i] = value % ps.k;
        value /= ps.k;
      }
    }
  }
  // Pick the evaluation point with the fewest value-agreements among
  // out-neighbors (zero agreements exist in the proper regime). The scan
  // keeps the first-strict-minimum rule but stops early: once a
  // zero-collision point is found no later point can win, and within a
  // point counting past the current best cannot change the argmin — both
  // cuts leave best_s bit-identical to the full scan. (The counting cut
  // only applies to the scalar loop; the batched counter always counts
  // fully, which records the same best_s/best_collisions because a cut
  // count is only ever >= the running best.)
  std::uint64_t best_s = 0;
  std::int64_t best_collisions = -1;
  for (std::uint64_t s = 0; s < ps.k && best_collisions != 0; ++s) {
    const std::uint64_t mine_at_s = eval_digits(mine_digits, nc, ps.k, s);
    std::int64_t collisions = 0;
    if (fast) {
      collisions = simd::count_eval_eq(
          tdigits.data(), rows, nc, static_cast<std::uint32_t>(ps.k),
          static_cast<std::uint32_t>(s),
          static_cast<std::uint32_t>(mine_at_s));
    } else {
      for (std::size_t j = 0; j < rows; ++j) {
        if (eval_digits(nbr_digits.data() + j * static_cast<std::size_t>(nc),
                        nc, ps.k, s) == mine_at_s) {
          ++collisions;
          if (best_collisions >= 0 && collisions >= best_collisions) break;
        }
      }
    }
    if (best_collisions < 0 || collisions < best_collisions) {
      best_collisions = collisions;
      best_s = s;
    }
  }
  if (proper_) {
    DCOLOR_CHECK_MSG(best_collisions == 0,
                     "Linial step found no collision-free point at node "
                         << v << " (k=" << ps.k << ", D=" << ps.degree << ")");
  }
  color_[vi] = static_cast<Color>(
      best_s * ps.k + eval_digits(mine_digits, nc, ps.k, best_s));
}

void PolyReduceProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  const int idx = round - 1;  // schedule index executed this round
  if (idx >= static_cast<int>(schedule_.size())) {
    finished_[vi] = 1;
    return;
  }
  // Collect the current colors of OUT-neighbors (all neighbors in the
  // undirected mode) from the inbox. Thread-local scratch: step() runs on
  // pool threads, and reusing one buffer per thread avoids a heap
  // allocation per step.
  static thread_local std::vector<Color> out_colors;
  out_colors.clear();
  for (const Envelope& env : mail.inbox()) {
    if (undirected_ || orientation_->is_out_edge(v, env.from)) {
      out_colors.push_back(env.message.field(0));
    }
  }
  apply_step(v, schedule_[static_cast<std::size_t>(idx)], out_colors);

  if (idx + 1 < static_cast<int>(schedule_.size())) {
    Message m;
    m.push(color_[vi],
           std::max(1, ceil_log2(spaces_[static_cast<std::size_t>(idx) + 1])));
    broadcast(*graph_, mail, m);
  } else {
    finished_[vi] = 1;
  }
}

bool PolyReduceProgram::done(NodeId v) const {
  return finished_[static_cast<std::size_t>(v)] != 0;
}

// ---- DenseKernel ------------------------------------------------------
//
// Representation: a pending broadcast from v is one nonzero entry in the
// per-node width lane; the payload is v's current color (every message
// here is a one-field color broadcast), snapshotted at deliver time.

bool PolyReduceProgram::absorb(std::span<const Mailbox::Outgoing> queued) {
  const std::size_t n = color_.size();
  if (read_round_.empty()) {  // lazily sized: scalar runs never pay this
    pending_bits_.assign(n, 0);
    read_round_.assign(n, -1);
    read_color_.assign(n, 0);
    touch_stamp_.assign(n, -1);
  }
  DCOLOR_CHECK(pending_senders_.empty());
  const Graph& g = *graph_;
  bool ok = true;
  for (const Mailbox::Outgoing& out : queued) {
    const auto vi = static_cast<std::size_t>(out.from);
    const Message& m = out.message;
    if (out.to != Mailbox::kBroadcastTo || vi >= n ||
        pending_bits_[vi] != 0 || m.num_fields() != 1 ||
        m.field(0) != color_[vi] || m.bits() <= 0 || m.bits() > 64) {
      ok = false;
      break;
    }
    pending_bits_[vi] = static_cast<std::int8_t>(m.bits());
    pending_senders_.push_back(out.from);
    pending_msgs_ += g.degree(out.from);
  }
  if (!ok) {  // leave no trace: the engine keeps the scalar buffer
    for (const NodeId s : pending_senders_) {
      pending_bits_[static_cast<std::size_t>(s)] = 0;
    }
    pending_senders_.clear();
    pending_msgs_ = 0;
  }
  return ok;
}

void PolyReduceProgram::spill(std::vector<Mailbox::Outgoing>& sink) {
  for (const NodeId s : pending_senders_) {
    const auto si = static_cast<std::size_t>(s);
    Message m;
    m.push(color_[si], pending_bits_[si]);
    pending_bits_[si] = 0;
    sink.push_back({Mailbox::kBroadcastTo, s, std::move(m)});
  }
  pending_senders_.clear();
  pending_msgs_ = 0;
}

void PolyReduceProgram::deliver(std::int64_t round,
                                std::vector<NodeId>& touched) {
  const Graph& g = *graph_;
  const std::size_t n = color_.size();
  bool graph_shaped = pending_senders_.size() == n;
  for (std::size_t i = 0; graph_shaped && i < n; ++i) {
    graph_shaped = pending_senders_[i] == static_cast<NodeId>(i);
  }
  for (const NodeId s : pending_senders_) {
    const auto si = static_cast<std::size_t>(s);
    read_round_[si] = round;
    read_color_[si] = color_[si];
    pending_bits_[si] = 0;
  }
  if (graph_shaped) {
    // Mirrors the scalar engine's graph-shaped fast path: receivers are
    // the non-isolated nodes ascending (same set and order — `touched`
    // becomes the step order).
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      if (g.degree(v) != 0) touched.push_back(v);
    }
  } else {
    for (const NodeId s : pending_senders_) {
      for (const NodeId u : g.neighbors(s)) {
        if (touch_stamp_[static_cast<std::size_t>(u)] != round) {
          touch_stamp_[static_cast<std::size_t>(u)] = round;
          touched.push_back(u);
        }
      }
    }
  }
  pending_senders_.clear();
  pending_msgs_ = 0;
}

void PolyReduceProgram::step_batch(std::int64_t round,
                                   std::span<const NodeId> active,
                                   std::size_t lo, std::size_t hi,
                                   int message_bit_cap, DenseChunk& chunk) {
  const Graph& g = *graph_;
  static thread_local std::vector<Color> out_colors;
  for (std::size_t i = lo; i < hi; ++i) {
    // Prefetch the stamp/color lanes the node-after-next will gather:
    // adjacency rows stream sequentially in dense rounds (active ids
    // ascend), but the per-neighbor stamps they point at are random.
    if (i + 2 < hi) {
      const NodeId pv = active[i + 2];
      const std::span<const NodeId> pn =
          undirected_ ? g.neighbors(pv) : orientation_->out_neighbors(pv);
      for (const NodeId u : pn) {
        const auto ui = static_cast<std::size_t>(u);
        __builtin_prefetch(&read_round_[ui]);
        __builtin_prefetch(&read_color_[ui]);
      }
    }
    const NodeId v = active[i];
    const auto vi = static_cast<std::size_t>(v);
    const int idx = static_cast<int>(round) - 1;
    if (idx >= static_cast<int>(schedule_.size())) {
      finished_[vi] = 1;
      continue;
    }
    // Same sender set as the scalar inbox filter (u sent ∧ u is an
    // out-neighbor), gathered by scanning out-neighbors for live stamps;
    // order differs, which the collision sums are invariant to.
    out_colors.clear();
    for (const NodeId u :
         undirected_ ? g.neighbors(v) : orientation_->out_neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (read_round_[ui] == round) out_colors.push_back(read_color_[ui]);
    }
    apply_step(v, schedule_[static_cast<std::size_t>(idx)], out_colors);

    if (idx + 1 < static_cast<int>(schedule_.size())) {
      const int deg = g.degree(v);
      if (deg != 0) {  // isolated broadcasts expand to nothing (scalar
                       // account pass drops them before the cap check)
        const int bits = std::max(
            1, ceil_log2(spaces_[static_cast<std::size_t>(idx) + 1]));
        DCOLOR_CHECK_MSG(message_bit_cap <= 0 || bits <= message_bit_cap,
                         "CONGEST violation: node "
                             << v << " sent " << bits << " bits (cap "
                             << message_bit_cap << ")");
        pending_bits_[vi] = static_cast<std::int8_t>(bits);
        chunk.senders.push_back(v);
        chunk.msgs += deg;
        chunk.bits += static_cast<std::int64_t>(deg) * bits;
        chunk.max_bits = std::max(chunk.max_bits, bits);
      }
    } else {
      finished_[vi] = 1;
    }
  }
}

void PolyReduceProgram::commit_senders(std::span<const NodeId> senders) {
  const Graph& g = *graph_;
  pending_senders_.insert(pending_senders_.end(), senders.begin(),
                          senders.end());
  for (const NodeId s : senders) pending_msgs_ += g.degree(s);
}

LinialResult linial_coloring(const Graph& g, const Orientation& o,
                             const std::vector<Color>& initial,
                             std::uint64_t q) {
  PolyReduceProgram program(g, o, initial, q, poly_schedule(q, 0.0, o.beta()),
                            /*proper=*/true);
  PhaseSpan phase("linial");
  Network net(g);
  LinialResult result;
  result.metrics = net.run(program, 8 + program.iterations());
  result.colors = program.colors();
  result.num_colors = static_cast<std::int64_t>(program.final_space());
  return result;
}

LinialResult linial_from_ids(const Graph& g, const Orientation& o) {
  std::vector<Color> ids(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    ids[static_cast<std::size_t>(v)] = v;
  return linial_coloring(g, o, ids,
                         std::max<std::uint64_t>(
                             2, static_cast<std::uint64_t>(g.num_nodes())));
}

}  // namespace dcolor
