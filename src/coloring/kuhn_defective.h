// Lemma 3.4 [Kuh09, KS18]: O(log* q)-round defective coloring.
//
// For a parameter 0 < α <= 1, colors the nodes of an oriented graph with
// O(1/α²) colors such that every node has at most α·β_v same-colored
// OUT-neighbors. This is the workhorse that lets Algorithm 2 (Fast
// Two-Sweep) replace the expensive proper q-coloring by a cheap defective
// one, and it also drives the slack-reduction lemmas in Section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/metrics.h"

namespace dcolor {

struct DefectiveColoringResult {
  std::vector<Color> colors;    ///< values in [0, num_colors)
  std::int64_t num_colors = 0;  ///< O(1/α²)
  RoundMetrics metrics;         ///< O(log* q) rounds
};

/// Computes the Lemma 3.4 coloring from an initial proper q-coloring.
/// Postcondition (checked by tests): every node v has at most ⌊α·β_v⌋
/// same-colored out-neighbors under `o`.
DefectiveColoringResult kuhn_defective_coloring(
    const Graph& g, const Orientation& o, const std::vector<Color>& initial,
    std::uint64_t q, double alpha);

/// Convenience: start from unique IDs (q = n).
DefectiveColoringResult kuhn_defective_from_ids(const Graph& g,
                                                const Orientation& o,
                                                double alpha);

/// Undirected variant (Section 4.2's reading of Lemma 3.4): colors with
/// O(1/α²) colors such that every node has at most ⌊α·deg(v)⌋ same-colored
/// NEIGHBORS, by running the reduction on the symmetric digraph.
DefectiveColoringResult kuhn_defective_undirected(
    const Graph& g, const std::vector<Color>& initial, std::uint64_t q,
    double alpha);

}  // namespace dcolor
