// Classic greedy color reduction [GPS88, Lin87 intro]: given a proper
// C-coloring, eliminate one color class per round — every node of the
// currently highest class recolors to a free color in {0,…,Δ} (classes
// are independent sets, so all its nodes act simultaneously). C − (Δ+1)
// rounds reduce to Δ+1 colors; combined with Linial this is the textbook
// O(Δ² + log* n)-round (Δ+1)-coloring the paper's introduction cites as
// the baseline all later work improves on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"

namespace dcolor {

struct ColorReductionResult {
  std::vector<Color> colors;  ///< proper, values in [0, target_colors)
  RoundMetrics metrics;       ///< max(0, C − target) rounds
};

/// Reduces a proper coloring with values in [0, C) to `target_colors`
/// colors (must be >= Δ+1; checked). Runs through the message-passing
/// simulator.
ColorReductionResult reduce_colors(const Graph& g,
                                   const std::vector<Color>& initial,
                                   std::int64_t c, std::int64_t target_colors);

/// The textbook pipeline: Linial (O(log* n)) then greedy reduction to
/// Δ+1 colors — O(Δ² + log* n) rounds in total.
ColorReductionResult linial_plus_reduction(const Graph& g);

}  // namespace dcolor
