// Randomized (Δ+1)-coloring baseline in the style of [ABI86, Lub86,
// BEPS16]: every uncolored node proposes a uniformly random available
// color each round and keeps it unless an uncolored neighbor proposed the
// same color. O(log n) rounds with high probability.
#pragma once

#include "core/instance.h"
#include "graph/graph.h"

namespace dcolor {

class Rng;

/// Randomized (deg+1)-list coloring: works on any zero-defect instance
/// with |L_v| >= deg(v)+1. Throws after `max_rounds` without progress.
ColoringResult luby_list_coloring(const ListDefectiveInstance& inst, Rng& rng,
                                  std::int64_t max_rounds = 10000);

/// Classic (Δ+1)-coloring via the full palette.
ColoringResult luby_delta_plus_one(const Graph& g, Rng& rng);

}  // namespace dcolor
