// One-sweep defective coloring for bounded neighborhood independence
// (the greedy algorithm from the paper's introduction, [BE11]).
//
// Sweeping once over the classes of a proper q-coloring and picking the
// least-used of k colors among earlier neighbors yields (via Claim 4.1)
// at most (2·⌊Δ/k⌋+1)·θ same-colored neighbors — an O(θ·Δ/d)-color
// d-defective coloring on θ-bounded graphs.
#pragma once

#include "coloring/kuhn_defective.h"
#include "graph/graph.h"

namespace dcolor {

/// k-coloring with defect <= (2·⌊Δ/k⌋+1)·θ on a graph of neighborhood
/// independence θ (the bound holds for whatever θ the graph actually has;
/// callers measure the defect). rounds = q + 1.
DefectiveColoringResult one_sweep_theta_defective(
    const Graph& g, const std::vector<Color>& initial, std::int64_t q, int k);

}  // namespace dcolor
