// Sequential greedy baselines.
//
// The classic centralized algorithms the paper positions itself against:
// first-fit (Δ+1)-coloring and greedy list (arb)defective coloring. Their
// "round complexity" is the sequential horizon n — the number every
// distributed algorithm is trying to beat.
#pragma once

#include "core/instance.h"
#include "graph/graph.h"

namespace dcolor {

/// First-fit (Δ+1)-coloring in id order. rounds = n (fully sequential).
ColoringResult greedy_delta_plus_one(const Graph& g);

/// Greedy list arbdefective coloring in id order: each node picks the
/// first color whose residual defect covers its already-colored
/// neighbors; edges orient toward earlier nodes. Succeeds whenever the
/// instance has slack > 1 (pigeonhole), which is checked.
ArbdefectiveResult greedy_arbdefective(const ArbdefectiveInstance& inst);

}  // namespace dcolor
