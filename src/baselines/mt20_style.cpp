#include "baselines/mt20_style.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/math.h"

namespace dcolor {

namespace {

double log2_clamped(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

double fk23a_required_weight_sq(int beta, std::int64_t color_space,
                                std::int64_t q) {
  const double b = std::max(2, beta);
  const double loglog_c = log2_clamped(log2_clamped(
      static_cast<double>(std::max<std::int64_t>(2, color_space))));
  const double loglog_q = log2_clamped(
      log2_clamped(static_cast<double>(std::max<std::int64_t>(2, q))));
  const double log_b = log2_clamped(b);
  const double loglog_b = log2_clamped(log_b);
  return b * b * (log_b + loglog_c + loglog_q) * loglog_b * loglog_b *
         (loglog_b + loglog_q);
}

std::int64_t fk23a_min_list_size(int beta, int defect,
                                 std::int64_t color_space, std::int64_t q) {
  const double rhs = fk23a_required_weight_sq(beta, color_space, q);
  const double per_color = static_cast<double>(defect + 1) *
                           static_cast<double>(defect + 1);
  return static_cast<std::int64_t>(std::floor(rhs / per_color)) + 1;
}

std::int64_t two_sweep_min_list_size(int beta, int defect) {
  // p must satisfy (d+1)·p > β or no list size ever works (the Λ/p branch
  // of the max dominates forever); the smallest such p minimizes Λ.
  const std::int64_t p = std::max(1, beta) / (defect + 1) + 1;
  // Smallest Λ with Λ·(d+1) > max{p, Λ/p}·β, i.e. Λ·(d+1)·p > max{p², Λ}·β.
  // Feasible at Λ = p² because p·(d+1) > β; scan up to there.
  for (std::int64_t lambda = 1;; ++lambda) {
    const std::int64_t lhs = lambda * (defect + 1) * p;
    const std::int64_t rhs = std::max(p * p, lambda) * std::max(1, beta);
    if (lhs > rhs) return lambda;
    DCOLOR_CHECK_MSG(lambda <= p * p, "unreachable: Λ = p² is feasible");
  }
}

Phase1Selection sort_based_phase1(const ColorList& list,
                                  std::span<const int> k_counts, int p,
                                  int n_greater) {
  (void)n_greater;  // the sort-based rule doesn't need it
  DCOLOR_CHECK(k_counts.size() == list.size());
  Phase1Selection sel;
  std::vector<std::size_t> order(list.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int ma = list.defect(a) - k_counts[a];
    const int mb = list.defect(b) - k_counts[b];
    if (ma != mb) return ma > mb;
    return a < b;
  });
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(p), list.size());
  for (std::size_t i = 0; i < take; ++i)
    sel.subset.push_back(list.color(order[i]));
  std::sort(sel.subset.begin(), sel.subset.end());
  sel.ops = static_cast<std::int64_t>(list.size()) *
            std::max(1, ceil_log2(std::max<std::uint64_t>(2, list.size())));
  return sel;
}

Phase1Selection subset_search_phase1(const ColorList& list,
                                     std::span<const int> k_counts, int p,
                                     int n_greater) {
  DCOLOR_CHECK(k_counts.size() == list.size());
  DCOLOR_CHECK_MSG(list.size() <= 30, "subset search capped at 30 colors");
  Phase1Selection sel;
  const auto lambda = static_cast<int>(list.size());
  // Score of subset S: Σ_{x∈S}(d(x)+1) − Σ_{x∈S}k(x) − |N_>| — Eq. (4)'s
  // margin; higher is better. Exhaustive over all 2^Λ subsets of size <= p.
  std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
  std::uint32_t best_mask = 0;
  const std::uint32_t limit = lambda >= 31 ? 0x7FFFFFFFu
                                           : (1u << lambda) - 1u;
  const int take = std::min(p, lambda);  // Algorithm 1 picks exactly this
  for (std::uint32_t mask = 1; mask <= limit; ++mask) {
    if (std::popcount(mask) != take) {
      ++sel.ops;
      continue;
    }
    std::int64_t score = -n_greater;
    for (int i = 0; i < lambda; ++i) {
      ++sel.ops;
      if (mask & (1u << i)) {
        score += list.defect(static_cast<std::size_t>(i)) + 1 -
                 k_counts[static_cast<std::size_t>(i)];
      }
    }
    if (score > best_score) {
      best_score = score;
      best_mask = mask;
    }
  }
  for (int i = 0; i < lambda; ++i) {
    if (best_mask & (1u << i))
      sel.subset.push_back(list.color(static_cast<std::size_t>(i)));
  }
  return sel;
}

}  // namespace dcolor
