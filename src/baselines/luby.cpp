#include "baselines/luby.h"

#include <algorithm>

#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {

ColoringResult luby_list_coloring(const ListDefectiveInstance& inst, Rng& rng,
                                  std::int64_t max_rounds) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(static_cast<int>(lst.size()) >= g.degree(v) + 1,
                     "luby needs (deg+1)-lists; node " << v);
    for (std::size_t i = 0; i < lst.size(); ++i) {
      DCOLOR_CHECK(lst.defect(i) == 0);
    }
  }

  ColoringResult result;
  result.colors.assign(n, kNoColor);
  std::vector<std::vector<Color>> available(n);
  for (std::size_t vi = 0; vi < n; ++vi) {
    const auto cs = inst.lists[vi].colors();
    available[vi].assign(cs.begin(), cs.end());
  }

  std::vector<Color> proposal(n, kNoColor);
  std::int64_t colored = 0;
  for (std::int64_t round = 1;; ++round) {
    DCOLOR_CHECK_MSG(round <= max_rounds, "luby failed to converge");
    // Propose.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (result.colors[vi] != kNoColor) {
        proposal[vi] = kNoColor;
        continue;
      }
      const auto& av = available[vi];
      proposal[vi] = av[static_cast<std::size_t>(rng.below(av.size()))];
    }
    // Commit proposals without an equal neighboring proposal.
    std::vector<NodeId> committed;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (proposal[vi] == kNoColor) continue;
      const bool clash = std::any_of(
          g.neighbors(v).begin(), g.neighbors(v).end(), [&](NodeId u) {
            return proposal[static_cast<std::size_t>(u)] == proposal[vi];
          });
      if (!clash) committed.push_back(v);
    }
    for (NodeId v : committed) {
      const auto vi = static_cast<std::size_t>(v);
      result.colors[vi] = proposal[vi];
      ++colored;
    }
    for (NodeId v : committed) {
      const auto vi = static_cast<std::size_t>(v);
      for (NodeId u : g.neighbors(v)) {
        const auto ui = static_cast<std::size_t>(u);
        if (result.colors[ui] != kNoColor) continue;
        auto& av = available[ui];
        const auto it =
            std::lower_bound(av.begin(), av.end(), result.colors[vi]);
        if (it != av.end() && *it == result.colors[vi]) av.erase(it);
      }
    }
    result.metrics.rounds = round;
    result.metrics.total_messages += 2 * g.num_edges();
    result.metrics.max_message_bits =
        std::max(result.metrics.max_message_bits,
                 ceil_log2(static_cast<std::uint64_t>(
                     std::max<std::int64_t>(2, inst.color_space))));
    if (colored == g.num_nodes()) break;
  }
  return result;
}

ColoringResult luby_delta_plus_one(const Graph& g, Rng& rng) {
  return luby_list_coloring(delta_plus_one_instance(g), rng);
}

}  // namespace dcolor
