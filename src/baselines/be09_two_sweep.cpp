#include "baselines/be09_two_sweep.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "util/math.h"

namespace dcolor {

namespace {

/// Shared driver; `relevant(v, u)` says whether neighbor u counts for v
/// (all neighbors in the undirected variant, out-neighbors otherwise).
DefectiveColoringResult run_two_sweeps(
    const Graph& g, const std::vector<Color>& initial, std::int64_t q, int k,
    const std::function<bool(NodeId, NodeId)>& relevant) {
  DCOLOR_CHECK(k >= 1);
  DCOLOR_CHECK(static_cast<NodeId>(initial.size()) == g.num_nodes());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK(initial[static_cast<std::size_t>(v)] >= 0 &&
                 initial[static_cast<std::size_t>(v)] < q);
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial[static_cast<std::size_t>(u)] !=
                           initial[static_cast<std::size_t>(v)],
                       "initial coloring not proper");
    }
  }

  auto earlier = [&](NodeId u, NodeId v) {
    const Color cu = initial[static_cast<std::size_t>(u)];
    const Color cv = initial[static_cast<std::size_t>(v)];
    return cu < cv;  // proper coloring: equal colors are never adjacent
  };

  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return initial[static_cast<std::size_t>(a)] <
           initial[static_cast<std::size_t>(b)];
  });

  // Sweep 1 (ascending): c1 minimizes the same-c1 count among earlier
  // relevant neighbors.
  std::vector<Color> c1(n, kNoColor);
  for (NodeId v : order) {
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (NodeId u : g.neighbors(v)) {
      if (relevant(v, u) && earlier(u, v)) {
        ++count[static_cast<std::size_t>(c1[static_cast<std::size_t>(u)])];
      }
    }
    const auto it = std::min_element(count.begin(), count.end());
    c1[static_cast<std::size_t>(v)] = static_cast<Color>(it - count.begin());
  }

  // Sweep 2 (descending): c2 minimizes the same-(c1,c2) count among the
  // later relevant neighbors, whose pairs are already final.
  std::vector<Color> c2(n, kNoColor);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (NodeId u : g.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (relevant(v, u) && !earlier(u, v) &&
          c1[ui] == c1[static_cast<std::size_t>(v)]) {
        ++count[static_cast<std::size_t>(c2[ui])];
      }
    }
    const auto best = std::min_element(count.begin(), count.end());
    c2[static_cast<std::size_t>(v)] =
        static_cast<Color>(best - count.begin());
  }

  DefectiveColoringResult result;
  result.colors.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.colors[i] = c1[i] * k + c2[i];
  result.num_colors = static_cast<std::int64_t>(k) * k;
  // Two sweeps over the q classes plus one initial-color broadcast.
  result.metrics.rounds = 2 * q + 1;
  result.metrics.max_message_bits =
      std::max(1, 2 * ceil_log2(static_cast<std::uint64_t>(std::max(2, k))));
  return result;
}

}  // namespace

DefectiveColoringResult be09_two_sweep_undirected(
    const Graph& g, const std::vector<Color>& initial, std::int64_t q,
    int k) {
  return run_two_sweeps(g, initial, q, k,
                        [](NodeId, NodeId) { return true; });
}

DefectiveColoringResult be09_two_sweep_oriented(
    const Graph& g, const Orientation& o, const std::vector<Color>& initial,
    std::int64_t q, int k) {
  return run_two_sweeps(
      g, initial, q, k,
      [&o](NodeId v, NodeId u) { return o.is_out_edge(v, u); });
}

}  // namespace dcolor
