// Registry adapters for the baselines the paper positions itself
// against: sequential first-fit, sequential greedy list arbdefective
// coloring, and the randomized Luby-style (Δ+1)-coloring. Exposing them
// through the same Solver interface lets the CLI, the batch runner, and
// the fuzz harness compare them head to head with the paper's
// algorithms.
#include <utility>

#include "baselines/greedy.h"
#include "baselines/luby.h"
#include "core/solver_registry.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

using Input = SolverCapabilities::Input;

class GreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "greedy"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kGraph;
    c.proper_output = true;
    c.distributed = false;
    return c;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.graph != nullptr, "greedy needs a graph");
    ColoringResult r = greedy_delta_plus_one(*req.graph);
    SolveResult out;
    out.colors = std::move(r.colors);
    out.metrics = r.metrics;
    ctx.metrics += r.metrics;
    return out;
  }
};

class GreedyArbdefectiveSolver final : public Solver {
 public:
  std::string_view name() const override { return "greedy_arbdefective"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kArbdefective;
    c.lists = true;
    c.defects = true;
    c.outputs_orientation = true;
    c.distributed = false;
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    if (req.list_defective == nullptr || req.list_defective->color_space < 1)
      return false;
    const ArbdefectiveInstance& inst = *req.list_defective;
    for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
      if (inst.lists[static_cast<std::size_t>(v)].weight() <=
          inst.graph->degree(v)) {
        return false;
      }
    }
    return true;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.list_defective != nullptr,
                     "greedy_arbdefective needs an arbdefective instance");
    ArbdefectiveResult r = greedy_arbdefective(*req.list_defective);
    SolveResult out;
    out.colors = std::move(r.colors);
    out.orientation = std::move(r.orientation);
    out.has_orientation = true;
    out.metrics = r.metrics;
    ctx.metrics += r.metrics;
    return out;
  }
};

class LubySolver final : public Solver {
 public:
  std::string_view name() const override { return "luby"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kGraph;
    c.proper_output = true;
    c.randomized = true;
    return c;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.graph != nullptr, "luby needs a graph");
    Rng rng = ctx.rng(/*salt=*/0x6c756279);  // "luby"
    ColoringResult r = luby_delta_plus_one(*req.graph, rng);
    SolveResult out;
    out.colors = std::move(r.colors);
    out.metrics = r.metrics;
    ctx.metrics += r.metrics;
    return out;
  }
};

}  // namespace

namespace detail {

void register_baseline_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<GreedySolver>());
  registry.add(std::make_unique<GreedyArbdefectiveSolver>());
  registry.add(std::make_unique<LubySolver>());
}

}  // namespace detail
}  // namespace dcolor
