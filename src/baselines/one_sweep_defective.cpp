#include "baselines/one_sweep_defective.h"

#include "coloring/arbdefective.h"

namespace dcolor {

DefectiveColoringResult one_sweep_theta_defective(
    const Graph& g, const std::vector<Color>& initial, std::int64_t q,
    int k) {
  // The one-sweep arbdefective partition IS this algorithm; Claim 4.1
  // upgrades its ⌊deg/k⌋ out-defect to a (2⌊deg/k⌋+1)·θ defect.
  auto part =
      arbdefective_partition(g, initial, q, k, PartitionEngine::kHonest);
  DefectiveColoringResult result;
  result.colors = std::move(part.classes);
  result.num_colors = k;
  result.metrics = part.metrics;
  return result;
}

}  // namespace dcolor
