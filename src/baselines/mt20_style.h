// Comparators against [MT20] and [FK23a] — the algorithms this paper
// claims to simplify.
//
// Two axes of comparison (both discussed in Section 1.1):
//
//  1. LIST-SIZE requirement. For uniform defect d, [FK23a] needs lists of
//     size Ω((β/d)²·(log β + log log C + log log q)·log²log β·
//     (log log β + log log q)); Theorem 1.1 with p = β/d needs only
//     ~p² + p colors. `fk23a_required_weight` evaluates the former (with
//     constant α = 1) so the bench can tabulate the gap.
//
//  2. INTERNAL computation. The [MT20]/[FK23a] nodes search a subset
//     family of 2^{2^{L_v}} candidates (FK23b, Appendix C: "more than
//     exponential in the maximum list size"). Our Phase-I step sorts the
//     list. `subset_search_phase1` implements an *optimistic* stand-in for
//     the former — an exhaustive scan of all 2^Λ subsets scored by the
//     Eq. (4) potential — i.e. a LOWER bound on the published algorithms'
//     per-node work, which is already exponentially slower than
//     `sort_based_phase1`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.h"

namespace dcolor {

/// The [FK23a] slack requirement Σ(d+1)² > α·β²·(log β + log log C +
/// log log q)·log²log β·(log log β + log log q), evaluated with α = 1.
/// Returns the right-hand side; an instance qualifies when
/// Σ(d_v(x)+1)² exceeds it.
double fk23a_required_weight_sq(int beta, std::int64_t color_space,
                                std::int64_t q);

/// Minimum uniform list size for defect d under the [FK23a] requirement.
std::int64_t fk23a_min_list_size(int beta, int defect,
                                 std::int64_t color_space, std::int64_t q);

/// Minimum uniform list size for defect d under Theorem 1.1 (ε = 0,
/// p = ⌈β/(d+1)⌉): the smallest Λ with Λ·(d+1) > max{p, Λ/p}·β.
std::int64_t two_sweep_min_list_size(int beta, int defect);

/// Result of a Phase-I subset selection plus an operation count.
struct Phase1Selection {
  std::vector<Color> subset;
  std::int64_t ops = 0;
};

/// Our Phase-I step: sort L_v by d_v(x) − k_v(x), take the best p.
/// ops ≈ Λ·logΛ.
Phase1Selection sort_based_phase1(const ColorList& list,
                                  std::span<const int> k_counts, int p,
                                  int n_greater);

/// Exhaustive-subset stand-in for the [MT20]/[FK23a] selection: scans all
/// 2^Λ subsets and returns the best of size min(p, Λ) by the Eq. (4)
/// potential. ops ≈ 2^Λ·Λ. Λ is capped at 30.
Phase1Selection subset_search_phase1(const ColorList& list,
                                     std::span<const int> k_counts, int p,
                                     int n_greater);

}  // namespace dcolor
