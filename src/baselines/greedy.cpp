#include "baselines/greedy.h"

#include <algorithm>

#include "util/check.h"

namespace dcolor {

ColoringResult greedy_delta_plus_one(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ColoringResult result;
  result.colors.assign(n, kNoColor);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<bool> taken(static_cast<std::size_t>(g.degree(v)) + 2, false);
    for (NodeId u : g.neighbors(v)) {
      const Color c = result.colors[static_cast<std::size_t>(u)];
      if (c != kNoColor && c <= g.degree(v)) {
        taken[static_cast<std::size_t>(c)] = true;
      }
    }
    Color pick = 0;
    while (taken[static_cast<std::size_t>(pick)]) ++pick;
    result.colors[static_cast<std::size_t>(v)] = pick;
  }
  result.metrics.rounds = g.num_nodes();
  return result;
}

ArbdefectiveResult greedy_arbdefective(const ArbdefectiveInstance& inst) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() > g.degree(v),
        "greedy needs slack > 1; fails at node " << v);
  }
  ArbdefectiveResult result;
  result.colors.assign(n, kNoColor);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    Color pick = kNoColor;
    for (std::size_t i = 0; i < lst.size(); ++i) {
      int used = 0;
      for (NodeId u : g.neighbors(v)) {
        if (u < v &&
            result.colors[static_cast<std::size_t>(u)] == lst.color(i)) {
          ++used;
        }
      }
      if (used <= lst.defect(i)) {
        pick = lst.color(i);
        break;
      }
    }
    DCOLOR_CHECK_MSG(pick != kNoColor,
                     "greedy found no feasible color at node "
                         << v << " despite slack > 1");
    result.colors[static_cast<std::size_t>(v)] = pick;
  }
  result.orientation = Orientation::by_id(g);  // toward earlier nodes
  result.metrics.rounds = g.num_nodes();
  return result;
}

}  // namespace dcolor
