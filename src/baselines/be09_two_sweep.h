// The classic NON-list Two-Sweep defective coloring [BE09, BHL+19].
//
// Two sweeps over the classes of a proper q-coloring, in opposite order.
// Sweep 1: v picks c1 ∈ [k] minimizing the same-c1 count among
// already-committed (earlier) relevant neighbors. Sweep 2 (reverse): v
// picks c2 ∈ [k] minimizing the same-(c1,c2) count among the later
// relevant neighbors (their pairs are already fixed). The final color is
// the pair (c1, c2) ∈ [k²] and the defect is at most
//   ⌊E/k⌋ + ⌊L/k⌋ <= ⌊(relevant degree)/k⌋ + 1-ish,
// where E/L are the earlier/later relevant neighbors. Taking
// k = ⌈(Δ+1)/(d+1)⌉ over all neighbors gives the d-defective
// ⌈(Δ+1)/(d+1)⌉²-coloring of [BE09, BHL+19]; restricting to OUT-neighbors
// gives the intro's "O(β²/d²) colors, ≤ d same-colored out-neighbors".
//
// This is the algorithm Theorem 1.1 generalizes to lists; the bench suite
// compares the two.
#pragma once

#include "coloring/kuhn_defective.h"
#include "graph/graph.h"
#include "graph/orientation.h"

namespace dcolor {

/// Undirected variant: k² colors, defect (same-colored neighbors)
/// <= ⌊deg(v)/k⌋ + (k-rounding) — with k = ⌈(Δ+1)/(d+1)⌉ this is <= d.
DefectiveColoringResult be09_two_sweep_undirected(
    const Graph& g, const std::vector<Color>& initial, std::int64_t q, int k);

/// Oriented variant: k² colors, at most ⌊β_v/k⌋-ish same-colored
/// OUT-neighbors; k = ⌈β/d⌉ gives the O(β²/d²)-color d-out-defective
/// coloring of the introduction.
DefectiveColoringResult be09_two_sweep_oriented(
    const Graph& g, const Orientation& o, const std::vector<Color>& initial,
    std::int64_t q, int k);

}  // namespace dcolor
