// Binary instance snapshots: build once, reload zero-copy.
//
// A snapshot file serializes a fully built coloring instance — graph CSR,
// orientation arcs, the interned palette arena — as raw little-endian
// arrays behind a versioned, checksummed superblock. Loading maps the
// file and *borrows* every array in place (StorageVec::adopt over
// MappedFile::view), so "reload" costs one mmap plus an O(n) structural
// validation pass instead of the full generator + intern + orient build:
// ~20× faster at n = 1M, and the loaded instance produces bit-identical
// colors because the bytes ARE the arrays the heap build produced.
//
// File layout (all offsets 4096-aligned):
//
//   [0, 4096)   superblock: SnapshotHeader + SectionEntry table + zeros
//   [4096, ...) payload sections, each padded to a 4096 boundary
//
//   section id  content                         element type
//   ----------  ------------------------------  ------------
//        1      graph CSR offsets (n+1)         int64
//        2      graph adjacency (2m)            int32 (NodeId)
//        3      orientation out-offsets (n+1)   int64
//        4      orientation out-arcs            int32
//        5      orientation in-offsets (n+1)    int64
//        6      orientation in-arcs             int32
//        7      palette arena colors            int64 (Color)
//        8      palette arena defects           int32
//        9      palette records (32 B each)     PaletteStore::PaletteRecord
//       10      per-node palette ids            uint32
//
// Sections 3–10 appear only when the snapshot carries an orientation /
// palette lists (the flags word says which). Snapshot bytes are a pure
// function of the instance content: the writer zero-fills all padding and
// the arena layout is deterministic (PaletteStore's build contract), so
// two independent builds of the same spec+seed produce byte-identical
// files — `cmp` is a valid determinism check.
//
// Compatibility rules: the magic pins the format family, `version` must
// match exactly (no cross-version reads), the endian tag rejects
// foreign-endian files, and the superblock checksum (FNV-1a with the
// checksum field zeroed) rejects corruption in the metadata. Payload
// checksums exist per section but are verified only on demand
// (`verify_payload`) — an always-on verify would read every page and
// forfeit the zero-copy load.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/instance.h"
#include "graph/graph.h"
#include "storage/mapped_file.h"

namespace dcolor {

inline constexpr char kSnapshotMagic[8] = {'D', 'C', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kSnapshotEndianTag = 0x01020304u;
inline constexpr std::size_t kSnapshotAlign = 4096;

enum SnapshotFlags : std::uint32_t {
  kSnapHasOrientation = 1u << 0,
  kSnapHasLists = 1u << 1,
  kSnapSymmetric = 1u << 2,
};

/// Fixed-size head of the 4096-byte superblock. Naturally aligned,
/// padding-free; written and read as raw bytes (same-endian hosts only,
/// enforced by the endian tag).
struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint64_t file_size;        ///< must equal the real file size
  std::uint64_t header_checksum;  ///< FNV-1a over the superblock with
                                  ///  this field zeroed
  std::int64_t num_nodes;
  std::int64_t num_edges;
  std::int64_t color_space;
  std::int64_t dedup_hits;  ///< PaletteStore accounting carried along so
                            ///  loaded instances report like built ones
  std::uint32_t flags;
  std::uint32_t num_sections;
};
static_assert(sizeof(SnapshotHeader) == 72 &&
                  std::is_trivially_copyable_v<SnapshotHeader>,
              "on-disk layout");

struct SnapshotSection {
  std::uint32_t id;
  std::uint32_t elem_size;
  std::uint64_t offset;     ///< absolute byte offset, 4096-aligned
  std::uint64_t count;      ///< element count
  std::uint64_t byte_size;  ///< == count * elem_size
  std::uint64_t checksum;   ///< FNV-1a over the payload bytes
};
static_assert(sizeof(SnapshotSection) == 40 &&
                  std::is_trivially_copyable_v<SnapshotSection>,
              "on-disk layout");

inline constexpr std::size_t kSnapshotMaxSections =
    (kSnapshotAlign - sizeof(SnapshotHeader)) / sizeof(SnapshotSection);

/// Parsed superblock metadata (for `--cmd=snapshot --load --info`-style
/// reporting and tests).
struct SnapshotInfo {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::int64_t color_space = 0;
  bool has_orientation = false;
  bool has_lists = false;
  bool symmetric = false;
  std::uint64_t file_size = 0;
  std::uint32_t num_sections = 0;
};

/// Serializes a bare graph (sections 1–2). One pass; fsynced on return.
void save_graph_snapshot(const std::string& path, const Graph& g);

/// Serializes a full OLDC instance (graph + orientation + palette arena).
/// With `inst.symmetric` the orientation sections are still written when
/// non-empty (the flag records the semantics, not the layout).
void save_instance_snapshot(const std::string& path, const OldcInstance& inst);

/// Serializes an undirected list defective instance (no orientation
/// sections; loading yields a symmetric-flagged snapshot usable through
/// `list_instance()`).
void save_instance_snapshot(const std::string& path,
                            const ListDefectiveInstance& inst);

/// A loaded snapshot: owns the mapping plus a heap `Graph` of borrowed
/// spans (stable address — instance views point at it). Movable; all
/// borrowed structures stay valid because the mapping is shared.
class InstanceSnapshot {
 public:
  /// Maps `path` and validates the superblock, the section table, and the
  /// structural invariants (CSR monotonicity, palette record bounds).
  /// Does NOT read the payload pages beyond that — see `verify_payload`.
  /// Throws CheckError on any mismatch.
  static InstanceSnapshot load(const std::string& path);

  const SnapshotInfo& info() const noexcept { return info_; }

  const Graph& graph() const noexcept { return *graph_; }

  bool has_instance() const noexcept { return info_.has_lists; }

  /// The OLDC view (graph pointer + borrowed orientation/lists). The
  /// snapshot must outlive every use. CHECKs has_instance().
  const OldcInstance& instance() const {
    DCOLOR_CHECK_MSG(has_instance(), "snapshot carries no palette lists");
    return instance_;
  }

  /// The undirected view over the same arrays (for P_D solvers).
  ListDefectiveInstance list_instance() const;

  /// Full payload-checksum pass (reads every page). Throws CheckError on
  /// the first mismatching section.
  void verify_payload() const;

  /// Drops the resident pages of the mapping (madvise MADV_DONTNEED);
  /// they reload transparently on next touch. The steady-state-RSS knob.
  void release_pages() const noexcept;

  /// The shared mapping, for callers that must extend its lifetime past
  /// this object (e.g. OwnedOldcInstance::backing).
  std::shared_ptr<MappedFile> file() const noexcept { return file_; }

 private:
  std::shared_ptr<MappedFile> file_;
  std::unique_ptr<Graph> graph_;  ///< heap: stable address for instance_
  OldcInstance instance_;         ///< borrowed views; valid iff has_lists
  SnapshotInfo info_;
};

/// Reads just the superblock metadata (maps, validates, unmaps). Cheap
/// existence-plus-shape probe for cache lookups and `--info`.
SnapshotInfo read_snapshot_info(const std::string& path);

/// True when `path` starts with the snapshot magic (the sniff the text
/// loaders use to dispatch). False for short/unreadable files.
bool is_snapshot_file(const std::string& path);

}  // namespace dcolor
