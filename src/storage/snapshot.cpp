#include "storage/snapshot.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/stats.h"
#include "util/check.h"

namespace dcolor {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = kFnvBasis) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t align_up(std::uint64_t x) noexcept {
  return (x + (kSnapshotAlign - 1)) & ~static_cast<std::uint64_t>(
                                          kSnapshotAlign - 1);
}

/// One payload section queued for writing.
struct SectionSpec {
  std::uint32_t id = 0;
  std::uint32_t elem_size = 0;
  const void* data = nullptr;
  std::uint64_t count = 0;
};

void record_counter(const char* name) {
  if (StatsRegistry* stats = StatsRegistry::current()) {
    stats->counter(name, StatDomain::kTiming).add(1);
  }
}

/// Lays out, writes, checksums, and fsyncs one snapshot file. The
/// superblock is assembled last (checksums need the payload), but all
/// bytes — including padding — are deterministic: create_rw zero-fills
/// and sections are emitted in the fixed id order the callers pass.
void write_snapshot(const std::string& path, SnapshotHeader header,
                    const std::vector<SectionSpec>& specs) {
  DCOLOR_CHECK(specs.size() <= kSnapshotMaxSections);
  std::vector<SnapshotSection> table(specs.size());
  std::uint64_t off = kSnapshotAlign;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::uint64_t bytes = specs[i].count * specs[i].elem_size;
    table[i].id = specs[i].id;
    table[i].elem_size = specs[i].elem_size;
    table[i].offset = off;
    table[i].count = specs[i].count;
    table[i].byte_size = bytes;
    off += align_up(bytes);
  }

  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.endian = kSnapshotEndianTag;
  header.file_size = off;
  header.header_checksum = 0;
  header.num_sections = static_cast<std::uint32_t>(specs.size());

  MappedFile file = MappedFile::create_rw(path, off);
  std::byte* base = file.mutable_data();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (table[i].byte_size > 0) {
      std::memcpy(base + table[i].offset, specs[i].data, table[i].byte_size);
    }
    table[i].checksum = fnv1a(base + table[i].offset, table[i].byte_size);
  }
  std::memcpy(base, &header, sizeof(header));
  if (!table.empty()) {
    std::memcpy(base + sizeof(header), table.data(),
                table.size() * sizeof(SnapshotSection));
  }
  // Superblock checksum: over the full 4096 bytes with the checksum field
  // itself still zero, then patched in.
  const std::uint64_t sum = fnv1a(base, kSnapshotAlign);
  std::memcpy(base + offsetof(SnapshotHeader, header_checksum), &sum,
              sizeof(sum));
  file.sync();
  record_counter("storage.snapshot_saves");
}

void append_graph_sections(const Graph& g, std::vector<SectionSpec>& specs) {
  const auto offsets = g.raw_offsets();
  const auto adj = g.raw_adjacency();
  specs.push_back({1, sizeof(std::int64_t), offsets.data(), offsets.size()});
  specs.push_back({2, sizeof(NodeId), adj.data(), adj.size()});
}

void append_palette_sections(const PaletteStore& lists,
                             std::vector<SectionSpec>& specs) {
  const auto colors = lists.arena_colors();
  const auto defects = lists.arena_defects();
  const auto records = lists.palette_records();
  const auto nodes = lists.node_palette_ids();
  specs.push_back({7, sizeof(Color), colors.data(), colors.size()});
  specs.push_back({8, sizeof(int), defects.data(), defects.size()});
  specs.push_back({9, sizeof(PaletteStore::PaletteRecord), records.data(),
                   records.size()});
  specs.push_back({10, sizeof(PaletteStore::PaletteId), nodes.data(),
                   nodes.size()});
}

}  // namespace

void save_graph_snapshot(const std::string& path, const Graph& g) {
  SnapshotHeader header{};
  header.num_nodes = g.num_nodes();
  header.num_edges = g.num_edges();
  std::vector<SectionSpec> specs;
  append_graph_sections(g, specs);
  write_snapshot(path, header, specs);
}

void save_instance_snapshot(const std::string& path,
                            const OldcInstance& inst) {
  DCOLOR_CHECK_MSG(inst.graph != nullptr, "instance has no graph");
  SnapshotHeader header{};
  header.num_nodes = inst.graph->num_nodes();
  header.num_edges = inst.graph->num_edges();
  header.color_space = inst.color_space;
  header.dedup_hits = inst.lists.dedup_hits();
  header.flags = kSnapHasLists;
  if (inst.symmetric) header.flags |= kSnapSymmetric;
  std::vector<SectionSpec> specs;
  append_graph_sections(*inst.graph, specs);
  const auto out_off = inst.orientation.raw_out_offsets();
  if (!out_off.empty()) {
    header.flags |= kSnapHasOrientation;
    const auto out_adj = inst.orientation.raw_out_adj();
    const auto in_off = inst.orientation.raw_in_offsets();
    const auto in_adj = inst.orientation.raw_in_adj();
    specs.push_back(
        {3, sizeof(std::int64_t), out_off.data(), out_off.size()});
    specs.push_back({4, sizeof(NodeId), out_adj.data(), out_adj.size()});
    specs.push_back({5, sizeof(std::int64_t), in_off.data(), in_off.size()});
    specs.push_back({6, sizeof(NodeId), in_adj.data(), in_adj.size()});
  }
  append_palette_sections(inst.lists, specs);
  write_snapshot(path, header, specs);
}

void save_instance_snapshot(const std::string& path,
                            const ListDefectiveInstance& inst) {
  DCOLOR_CHECK_MSG(inst.graph != nullptr, "instance has no graph");
  SnapshotHeader header{};
  header.num_nodes = inst.graph->num_nodes();
  header.num_edges = inst.graph->num_edges();
  header.color_space = inst.color_space;
  header.dedup_hits = inst.lists.dedup_hits();
  header.flags = kSnapHasLists | kSnapSymmetric;
  std::vector<SectionSpec> specs;
  append_graph_sections(*inst.graph, specs);
  append_palette_sections(inst.lists, specs);
  write_snapshot(path, header, specs);
}

namespace {

/// Superblock + section-table validation common to load() and
/// read_snapshot_info(). Returns the parsed table.
std::vector<SnapshotSection> parse_superblock(const MappedFile& file,
                                              SnapshotHeader* header) {
  DCOLOR_CHECK_MSG(file.size() >= kSnapshotAlign,
                   "'" << file.path() << "' too small for a snapshot ("
                       << file.size() << " bytes)");
  std::memcpy(header, file.data(), sizeof(*header));
  DCOLOR_CHECK_MSG(
      std::memcmp(header->magic, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0,
      "'" << file.path() << "' is not a dcolor snapshot (bad magic)");
  DCOLOR_CHECK_MSG(header->endian == kSnapshotEndianTag,
                   "'" << file.path()
                       << "' was written on a foreign-endian host");
  DCOLOR_CHECK_MSG(header->version == kSnapshotVersion,
                   "'" << file.path() << "' has snapshot version "
                       << header->version << ", expected "
                       << kSnapshotVersion);
  DCOLOR_CHECK_MSG(header->file_size == file.size(),
                   "'" << file.path() << "' truncated: header says "
                       << header->file_size << " bytes, file has "
                       << file.size());
  DCOLOR_CHECK_MSG(header->num_sections <= kSnapshotMaxSections,
                   "'" << file.path() << "' section table overflows");
  // Superblock checksum: recompute with the stored checksum zeroed.
  std::vector<std::byte> block(file.data(), file.data() + kSnapshotAlign);
  std::memset(block.data() + offsetof(SnapshotHeader, header_checksum), 0,
              sizeof(std::uint64_t));
  DCOLOR_CHECK_MSG(fnv1a(block.data(), block.size()) ==
                       header->header_checksum,
                   "'" << file.path() << "' superblock checksum mismatch "
                       << "(corrupted file)");

  std::vector<SnapshotSection> table(header->num_sections);
  if (!table.empty()) {
    std::memcpy(table.data(), file.data() + sizeof(SnapshotHeader),
                table.size() * sizeof(SnapshotSection));
  }
  for (const SnapshotSection& s : table) {
    DCOLOR_CHECK_MSG(s.byte_size == s.count * s.elem_size,
                     "'" << file.path() << "' section " << s.id
                         << " has inconsistent sizes");
    DCOLOR_CHECK_MSG(s.offset % kSnapshotAlign == 0,
                     "'" << file.path() << "' section " << s.id
                         << " is misaligned");
    DCOLOR_CHECK_MSG(s.offset >= kSnapshotAlign &&
                         s.offset <= file.size() &&
                         s.byte_size <= file.size() - s.offset,
                     "'" << file.path() << "' section " << s.id
                         << " overruns the file");
  }
  return table;
}

const SnapshotSection* find_section(const std::vector<SnapshotSection>& table,
                                    std::uint32_t id) {
  for (const SnapshotSection& s : table) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const SnapshotSection& require_section(
    const std::vector<SnapshotSection>& table, std::uint32_t id,
    std::uint32_t elem_size, const std::string& path) {
  const SnapshotSection* s = find_section(table, id);
  DCOLOR_CHECK_MSG(s != nullptr,
                   "'" << path << "' is missing section " << id);
  DCOLOR_CHECK_MSG(s->elem_size == elem_size,
                   "'" << path << "' section " << id << " has element size "
                       << s->elem_size << ", expected " << elem_size);
  return *s;
}

SnapshotInfo info_from_header(const SnapshotHeader& h) {
  SnapshotInfo info;
  info.num_nodes = h.num_nodes;
  info.num_edges = h.num_edges;
  info.color_space = h.color_space;
  info.has_orientation = (h.flags & kSnapHasOrientation) != 0;
  info.has_lists = (h.flags & kSnapHasLists) != 0;
  info.symmetric = (h.flags & kSnapSymmetric) != 0;
  info.file_size = h.file_size;
  info.num_sections = h.num_sections;
  return info;
}

}  // namespace

InstanceSnapshot InstanceSnapshot::load(const std::string& path) {
  InstanceSnapshot snap;
  snap.file_ = std::make_shared<MappedFile>(MappedFile::map_readonly(path));
  const MappedFile& file = *snap.file_;
  SnapshotHeader header{};
  const auto table = parse_superblock(file, &header);
  snap.info_ = info_from_header(header);
  DCOLOR_CHECK_MSG(header.num_nodes >= 0,
                   "'" << path << "' has negative node count");

  const auto n = static_cast<std::size_t>(header.num_nodes);
  const auto& off_sec =
      require_section(table, 1, sizeof(std::int64_t), path);
  const auto& adj_sec = require_section(table, 2, sizeof(NodeId), path);
  DCOLOR_CHECK_MSG(off_sec.count == n + 1,
                   "'" << path << "' offsets section disagrees with n");
  snap.graph_ = std::make_unique<Graph>(Graph::adopt(
      static_cast<NodeId>(header.num_nodes),
      file.view<std::int64_t>(off_sec.offset, off_sec.count),
      file.view<NodeId>(adj_sec.offset, adj_sec.count)));

  snap.instance_.graph = snap.graph_.get();
  snap.instance_.color_space = header.color_space;
  snap.instance_.symmetric = snap.info_.symmetric;

  if (snap.info_.has_orientation) {
    const auto& oo = require_section(table, 3, sizeof(std::int64_t), path);
    const auto& oa = require_section(table, 4, sizeof(NodeId), path);
    const auto& io = require_section(table, 5, sizeof(std::int64_t), path);
    const auto& ia = require_section(table, 6, sizeof(NodeId), path);
    DCOLOR_CHECK_MSG(oo.count == n + 1 && io.count == n + 1,
                     "'" << path << "' orientation sections disagree with n");
    snap.instance_.orientation = Orientation::adopt(
        file.view<std::int64_t>(oo.offset, oo.count),
        file.view<NodeId>(oa.offset, oa.count),
        file.view<std::int64_t>(io.offset, io.count),
        file.view<NodeId>(ia.offset, ia.count));
  }

  if (snap.info_.has_lists) {
    const auto& ac = require_section(table, 7, sizeof(Color), path);
    const auto& ad = require_section(table, 8, sizeof(int), path);
    const auto& pr = require_section(
        table, 9, sizeof(PaletteStore::PaletteRecord), path);
    const auto& np = require_section(
        table, 10, sizeof(PaletteStore::PaletteId), path);
    DCOLOR_CHECK_MSG(np.count == n,
                     "'" << path << "' node-palette section disagrees with n");
    snap.instance_.lists = PaletteStore::adopt(
        file.view<Color>(ac.offset, ac.count),
        file.view<int>(ad.offset, ad.count),
        file.view<PaletteStore::PaletteRecord>(pr.offset, pr.count),
        file.view<PaletteStore::PaletteId>(np.offset, np.count),
        header.dedup_hits);
  }

  record_counter("storage.snapshot_loads");
  return snap;
}

ListDefectiveInstance InstanceSnapshot::list_instance() const {
  DCOLOR_CHECK_MSG(has_instance(), "snapshot carries no palette lists");
  ListDefectiveInstance inst;
  inst.graph = graph_.get();
  inst.lists = instance_.lists.borrow();
  inst.color_space = instance_.color_space;
  return inst;
}

void InstanceSnapshot::verify_payload() const {
  SnapshotHeader header{};
  const auto table = parse_superblock(*file_, &header);
  file_->advise_sequential();
  for (const SnapshotSection& s : table) {
    const std::uint64_t sum = fnv1a(file_->data() + s.offset, s.byte_size);
    DCOLOR_CHECK_MSG(sum == s.checksum,
                     "'" << file_->path() << "' section " << s.id
                         << " payload checksum mismatch (corrupted file)");
  }
}

void InstanceSnapshot::release_pages() const noexcept {
  if (file_) file_->advise_dontneed();
}

SnapshotInfo read_snapshot_info(const std::string& path) {
  const MappedFile file = MappedFile::map_readonly(path);
  SnapshotHeader header{};
  parse_superblock(file, &header);
  return info_from_header(header);
}

bool is_snapshot_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kSnapshotMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

}  // namespace dcolor
