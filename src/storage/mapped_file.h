// Memory-mapped file regions for out-of-core instance storage.
//
// `MappedFile` is the OS-facing half of the storage seam: it owns one
// mmap'd region (read-only over an existing file, or read-write over a
// freshly created one) and hands out typed, bounds- and alignment-checked
// `view<T>()` spans that `StorageVec<T>::adopt` borrows. Nothing above
// this layer touches a file descriptor or a page size.
//
// Page-cache control is explicit: `sync()` flushes a written snapshot to
// disk before it is advertised to other processes, `advise_sequential()`
// primes readahead for the one-pass verifier, and `advise_dontneed()`
// drops the clean pages of a read-only mapping — the kernel reloads them
// on demand, so a long-lived process can shed the RSS of an instance it
// only touches occasionally (the out-of-core story for graphs that
// exceed RAM).
//
// Every successful map records `storage.maps` / `storage.mapped_bytes`
// into the thread-current StatsRegistry (kTiming domain: whether a map
// happens can depend on cache state, which is not part of the stable
// determinism contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/check.h"

namespace dcolor {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps an existing file read-only (PROT_READ, MAP_SHARED — instances of
  /// the same snapshot in different processes share the page cache).
  /// Throws CheckError when the file is missing, empty, or unmappable.
  static MappedFile map_readonly(const std::string& path);

  /// Creates (or truncates) `path` at exactly `size` bytes and maps it
  /// read-write. The fresh pages are zero-filled by the kernel, so
  /// whatever the writer does not touch is deterministically zero — the
  /// property that makes snapshot files byte-comparable.
  static MappedFile create_rw(const std::string& path, std::size_t size);

  bool mapped() const noexcept { return data_ != nullptr; }
  bool writable() const noexcept { return writable_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  const std::byte* data() const noexcept { return data_; }
  std::byte* mutable_data() {
    DCOLOR_CHECK_MSG(writable_, "mutable_data on a read-only mapping");
    return data_;
  }

  /// Typed span over `count` elements of T starting at byte `offset`.
  /// CHECKs bounds and that the offset respects alignof(T) — a mapping
  /// always starts page-aligned, so section offsets carry the alignment.
  template <typename T>
  std::span<const T> view(std::size_t offset, std::size_t count) const {
    DCOLOR_CHECK_MSG(offset % alignof(T) == 0,
                     "misaligned view at offset " << offset);
    DCOLOR_CHECK_MSG(offset <= size_ && count <= (size_ - offset) / sizeof(T),
                     "view [" << offset << ", +" << count * sizeof(T)
                              << ") overruns mapping of " << size_ << " bytes");
    return {reinterpret_cast<const T*>(data_ + offset), count};
  }

  /// msync(MS_SYNC): blocks until the written pages are on disk.
  void sync();

  /// madvise(MADV_DONTNEED) over the whole mapping. On a read-only
  /// MAP_SHARED mapping this drops the resident pages (they reload from
  /// the file on next touch) — the explicit "shrink my RSS" knob.
  void advise_dontneed() const noexcept;

  /// madvise(MADV_SEQUENTIAL): aggressive readahead for one-pass scans.
  void advise_sequential() const noexcept;

  /// Unmaps and closes now (the destructor's job, callable early).
  void reset() noexcept;

  /// System page size (the section alignment quantum of the snapshot
  /// format is fixed at 4096 independent of this, but mappings verify
  /// they are at least that aligned).
  static std::size_t page_size() noexcept;

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  bool writable_ = false;
  std::string path_;
};

}  // namespace dcolor
