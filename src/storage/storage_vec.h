// Owning-or-borrowed flat array — the storage seam under the hot data
// structures.
//
// The CSR arrays in `Graph`/`Orientation` and the palette arena in
// `PaletteStore` historically were plain `std::vector`s. To let the same
// structures view a read-only memory-mapped snapshot *zero-copy* (no
// per-element deserialization, no copy into the heap), each of those
// members is a `StorageVec<T>`: either it owns a `std::vector<T>` (the
// heap path, byte-identical layout and behavior to before) or it borrows
// a `[data, size)` span of externally owned memory (an mmap'd file
// section whose lifetime the caller guarantees).
//
// Reads go through cached `data_`/`size_` pointers, so the hot loops
// (`neighbors()`, `view()`, the simulator ingest paths) cost exactly what
// the raw vector cost — one load, no branch on the storage mode.
// Mutation is owner-only: every mutator CHECKs `!borrowed_`, so code that
// accidentally tries to grow or edit a mapped instance fails loudly
// instead of scribbling on a shared read-only page.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dcolor {

template <typename T>
class StorageVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "StorageVec elements must be trivially copyable (they may "
                "be raw bytes in a mapped file)");

 public:
  StorageVec() = default;

  /*implicit*/ StorageVec(std::vector<T> v)  // NOLINT(runtime/explicit)
      : owned_(std::move(v)) {
    sync();
  }

  StorageVec(const StorageVec& o) { *this = o; }
  StorageVec(StorageVec&& o) noexcept { *this = std::move(o); }

  /// Copying a borrowed vec yields another borrow of the same memory
  /// (cheap; the backing mapping must outlive both). Copying an owned vec
  /// deep-copies as a vector would.
  StorageVec& operator=(const StorageVec& o) {
    if (this == &o) return *this;
    if (o.borrowed_) {
      owned_.clear();
      data_ = o.data_;
      size_ = o.size_;
      borrowed_ = true;
    } else {
      owned_ = o.owned_;
      borrowed_ = false;
      sync();
    }
    return *this;
  }

  StorageVec& operator=(StorageVec&& o) noexcept {
    if (this == &o) return *this;
    if (o.borrowed_) {
      owned_.clear();
      data_ = o.data_;
      size_ = o.size_;
      borrowed_ = true;
    } else {
      owned_ = std::move(o.owned_);
      borrowed_ = false;
      sync();
    }
    o.owned_.clear();
    o.borrowed_ = false;
    o.sync();
    return *this;
  }

  StorageVec& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    borrowed_ = false;
    sync();
    return *this;
  }

  /// Borrows externally owned memory. The caller keeps `ptr[0..size)`
  /// alive and unchanged for the lifetime of this vec (and of any copies
  /// made from it).
  static StorageVec adopt(const T* ptr, std::size_t size) noexcept {
    StorageVec v;
    v.data_ = ptr;
    v.size_ = size;
    v.borrowed_ = true;
    return v;
  }

  bool borrowed() const noexcept { return borrowed_; }

  // ---- reads (both modes, zero-overhead) ------------------------------

  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  const T& back() const noexcept { return data_[size_ - 1]; }
  std::size_t capacity() const noexcept {
    return borrowed_ ? size_ : owned_.capacity();
  }

  // ---- mutation (owner-only) ------------------------------------------

  T* data() {
    require_owned();
    return owned_.data();
  }
  T& operator[](std::size_t i) {
    require_owned();
    return owned_[i];
  }
  T* begin() {
    require_owned();
    return owned_.data();
  }
  T* end() {
    require_owned();
    return owned_.data() + owned_.size();
  }

  void push_back(const T& x) {
    require_owned();
    owned_.push_back(x);
    sync();
  }

  template <typename It>
  void insert(const T* pos, It first, It last) {
    require_owned();
    DCOLOR_CHECK_MSG(pos == data_ + size_,
                     "StorageVec::insert supports append-at-end only");
    owned_.insert(owned_.end(), first, last);
    sync();
  }

  void assign(std::size_t n, const T& x) {
    require_owned();
    owned_.assign(n, x);
    sync();
  }

  void resize(std::size_t n) {
    require_owned();
    owned_.resize(n);
    sync();
  }
  void resize(std::size_t n, const T& x) {
    require_owned();
    owned_.resize(n, x);
    sync();
  }

  void reserve(std::size_t n) {
    require_owned();
    owned_.reserve(n);
    sync();
  }

  /// Always allowed: resets to an empty *owned* vec, releasing any borrow
  /// (the borrowed memory itself is untouched — it belongs to the caller).
  void clear() noexcept {
    owned_.clear();
    borrowed_ = false;
    sync();
  }

 private:
  void require_owned() const {
    DCOLOR_CHECK_MSG(!borrowed_,
                     "mutation of a borrowed (mmap-backed) StorageVec");
  }
  void sync() noexcept {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace dcolor
