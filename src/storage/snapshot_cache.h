// Build-once instance cache for the batch runner and the arena command.
//
// A batch with `repeat=` expansion or several solvers over one scenario
// used to rebuild the SAME instance bytes once per job (the instance is a
// pure function of the generator spec + effective seed + the handful of
// capability bits that shape the lists). The cache keys on exactly those
// inputs, builds each distinct instance once, and hands every other job a
// zero-copy borrowed view (StorageVec adopt over the entry's arrays).
//
// Two storage modes:
//   * in-memory (default): entries live on the heap for the batch's
//     lifetime. Only keys the planner marked cacheable (they occur more
//     than once) are cached, so a batch of all-distinct jobs keeps the
//     old scratch-arena memory profile.
//   * file-backed (`--snapshot-cache=<dir>`): every key maps to a
//     snapshot file named by its fingerprint. Hits mmap the file
//     zero-copy — including hits from PREVIOUS runs, which is where the
//     20× build-vs-reload gap pays off; misses build, save, and keep the
//     built entry.
//
// Concurrency: one mutex guards the key map; each entry is built under a
// per-key shared_future, so N workers racing on one key produce exactly
// one build (and deterministic built/reused accounting at every worker
// count — the batch report's determinism contract extends to these
// numbers).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/instance.h"
#include "graph/graph.h"
#include "storage/snapshot.h"

namespace dcolor {

/// Everything the batch instance builders consume. Two jobs with equal
/// keys build byte-identical instances (the builders draw from
/// Rng::stream(seed, salt) and the capability bits below — nothing else).
struct InstanceKey {
  int kind = 0;  ///< 0 = OLDC, 1 = list-defective, 2 = graph-only
  std::string generator;
  std::int64_t n = 0;
  int degree = 0;
  std::uint64_t seed = 0;  ///< effective seed (job seed + batch seed)
  bool symmetric = false;  ///< job.symmetric && caps.symmetric
  bool congest = false;    ///< caps.congest (shapes the defect sizing)
  int p = 0;
  double eps = 0.0;

  bool operator==(const InstanceKey&) const = default;

  /// Stable hex fingerprint (FNV-1a over the normalized field string);
  /// doubles as the snapshot file stem in file-backed mode.
  std::string fingerprint() const;
};

class SnapshotCache {
 public:
  /// One cached instance. `graph` has a stable heap address (entries are
  /// always shared_ptr-held), so borrowed views can point at it.
  struct Entry {
    InstanceKey key;
    Graph graph;
    OldcInstance oldc;                      ///< kind 0; .graph == &graph
    ListDefectiveInstance list_defective;   ///< kind 1; .graph == &graph
    std::unique_ptr<InstanceSnapshot> snapshot;  ///< file-backed hits

    const Graph& graph_ref() const {
      return snapshot != nullptr ? snapshot->graph() : graph;
    }
    /// Borrowed per-job views — cheap (pointer copies), independent
    /// lifetimes, read-only by construction (mutation CHECK-fails).
    OldcInstance borrow_oldc() const;
    ListDefectiveInstance borrow_list_defective() const;
  };

  using EntryPtr = std::shared_ptr<const Entry>;

  /// Fills entry.graph plus the instance matching key.kind. Must be a
  /// pure function of the key (the cache trusts this).
  using Builder = std::function<void(Entry&)>;

  /// `dir` empty = in-memory mode; otherwise snapshot files live in `dir`
  /// (created on first save if missing).
  explicit SnapshotCache(std::string dir = "");

  /// In-memory mode only caches keys announced here (the batch planner
  /// passes the keys occurring more than once). File-backed mode caches
  /// everything — cross-run reuse is the point.
  void set_cacheable(const std::vector<InstanceKey>& keys);

  /// The shared entry for `key`, building (at most once, under a per-key
  /// future) or mmap-loading as needed. Returns nullptr when the key is
  /// not cacheable — the caller falls back to its private scratch build.
  EntryPtr get_or_build(const InstanceKey& key, const Builder& build);

  // Accounting (deterministic at every worker count; see header comment).
  std::int64_t built() const;   ///< entries constructed by a Builder
  std::int64_t loaded() const;  ///< entries mmap'd from a snapshot file
  std::int64_t reused() const;  ///< get_or_build calls served an
                                ///  already-available entry

 private:
  struct KeyHash {
    std::size_t operator()(const InstanceKey& k) const noexcept;
  };

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_set<InstanceKey, KeyHash> cacheable_;
  std::unordered_map<InstanceKey, std::shared_future<EntryPtr>, KeyHash> map_;
  std::int64_t built_ = 0;
  std::int64_t loaded_ = 0;
  std::int64_t reused_ = 0;
};

}  // namespace dcolor
