#include "storage/snapshot_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace dcolor {

namespace {

std::uint64_t fnv1a_str(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Expected node count of the instance a Builder constructs for `key` —
/// the generators produce exactly key.n nodes except `cycle`, which
/// saturates at 3 (see batch_runner's build_graph).
std::int64_t expected_nodes(const InstanceKey& key) {
  if (key.generator == "cycle") return std::max<std::int64_t>(3, key.n);
  return key.n;
}

/// True when a loaded snapshot plausibly IS the instance `key` describes.
/// A fingerprint collision — or, more likely, a stale file written by an
/// older generator version under the same key — otherwise loads silently
/// and serves the wrong instance bytes to every job sharing the key.
bool snapshot_matches_key(const SnapshotInfo& info, const InstanceKey& key) {
  if (info.num_nodes != expected_nodes(key)) return false;
  switch (key.kind) {
    case 0:  // OLDC: lists + input orientation, symmetric bit must agree
      return info.has_lists && info.has_orientation &&
             info.symmetric == key.symmetric;
    case 1:  // list-defective: lists, no orientation sections
      return info.has_lists && !info.has_orientation;
    default:  // graph-only
      return !info.has_lists && !info.has_orientation;
  }
}

}  // namespace

std::string InstanceKey::fingerprint() const {
  // The pre-hash string is unbounded: a fixed buffer would silently
  // truncate long generator names and alias distinct keys onto one
  // fingerprint (and therefore one cache file). %.17g-equivalent
  // precision round-trips every double, so equal keys — and only equal
  // keys — share a fingerprint.
  std::ostringstream os;
  os << kind << '|' << generator << '|' << n << '|' << degree << '|' << seed
     << '|' << (symmetric ? 1 : 0) << '|' << (congest ? 1 : 0) << '|' << p
     << '|' << std::setprecision(17) << eps;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a_str(os.str())));
  return hex;
}

std::size_t SnapshotCache::KeyHash::operator()(
    const InstanceKey& k) const noexcept {
  std::uint64_t h = fnv1a_str(k.generator);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(k.kind));
  mix(static_cast<std::uint64_t>(k.n));
  mix(static_cast<std::uint64_t>(k.degree));
  mix(k.seed);
  mix(static_cast<std::uint64_t>(k.symmetric ? 1 : 2));
  mix(static_cast<std::uint64_t>(k.congest ? 1 : 2));
  mix(static_cast<std::uint64_t>(k.p));
  std::uint64_t eps_bits = 0;
  static_assert(sizeof(eps_bits) == sizeof(k.eps));
  std::memcpy(&eps_bits, &k.eps, sizeof(eps_bits));
  mix(eps_bits);
  return static_cast<std::size_t>(h);
}

OldcInstance SnapshotCache::Entry::borrow_oldc() const {
  const OldcInstance& src =
      snapshot != nullptr ? snapshot->instance() : oldc;
  OldcInstance inst;
  inst.graph = &graph_ref();
  inst.orientation = src.orientation.borrow();
  inst.lists = src.lists.borrow();
  inst.color_space = src.color_space;
  inst.symmetric = src.symmetric;
  return inst;
}

ListDefectiveInstance SnapshotCache::Entry::borrow_list_defective() const {
  if (snapshot != nullptr) return snapshot->list_instance();
  ListDefectiveInstance inst;
  inst.graph = &graph_ref();
  inst.lists = list_defective.lists.borrow();
  inst.color_space = list_defective.color_space;
  return inst;
}

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

void SnapshotCache::set_cacheable(const std::vector<InstanceKey>& keys) {
  const std::lock_guard<std::mutex> lock(mutex_);
  cacheable_.insert(keys.begin(), keys.end());
}

SnapshotCache::EntryPtr SnapshotCache::get_or_build(const InstanceKey& key,
                                                    const Builder& build) {
  std::promise<EntryPtr> promise;
  std::shared_future<EntryPtr> fut;
  bool builder_turn = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dir_.empty() && cacheable_.find(key) == cacheable_.end()) {
      return nullptr;  // single-occurrence key: scratch path
    }
    const auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
      ++reused_;
    } else {
      fut = promise.get_future().share();
      map_.emplace(key, fut);
      builder_turn = true;
    }
  }
  if (!builder_turn) return fut.get();  // blocks until the builder is done

  try {
    auto entry = std::make_shared<Entry>();
    entry->key = key;
    const std::string path =
        dir_.empty() ? std::string()
                     : dir_ + "/" + key.fingerprint() + ".snap";
    bool from_file = false;
    if (!path.empty() && is_snapshot_file(path)) {
      // A stale or corrupted cache file must not fail the batch: fall
      // back to a fresh build (which overwrites it). "Loadable" is not
      // enough — a structurally valid file whose shape contradicts the
      // key (stale generator version, fingerprint alias) is rejected the
      // same way.
      try {
        auto snapshot =
            std::make_unique<InstanceSnapshot>(InstanceSnapshot::load(path));
        if (snapshot_matches_key(snapshot->info(), key)) {
          entry->snapshot = std::move(snapshot);
          from_file = true;
        }
      } catch (const std::exception&) {
        entry->snapshot.reset();
      }
    }
    if (!from_file) {
      build(*entry);
      if (!path.empty()) {
        std::filesystem::create_directories(dir_);
        switch (key.kind) {
          case 0: save_instance_snapshot(path, entry->oldc); break;
          case 1: save_instance_snapshot(path, entry->list_defective); break;
          default: save_graph_snapshot(path, entry->graph); break;
        }
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (from_file) {
        ++loaded_;
      } else {
        ++built_;
      }
    }
    EntryPtr result = entry;
    promise.set_value(result);
    return result;
  } catch (...) {
    // Surface the failure to every waiter, then forget the key so a
    // later call can retry.
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(key);
    throw;
  }
}

std::int64_t SnapshotCache::built() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return built_;
}
std::int64_t SnapshotCache::loaded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}
std::int64_t SnapshotCache::reused() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reused_;
}

}  // namespace dcolor
