#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/stats.h"

namespace dcolor {

namespace {

void record_map(std::size_t bytes) {
  if (StatsRegistry* stats = StatsRegistry::current()) {
    stats->counter("storage.maps", StatDomain::kTiming).add(1);
    stats->counter("storage.mapped_bytes", StatDomain::kTiming)
        .add(static_cast<std::int64_t>(bytes));
  }
}

}  // namespace

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& o) noexcept { *this = std::move(o); }

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this == &o) return *this;
  reset();
  data_ = std::exchange(o.data_, nullptr);
  size_ = std::exchange(o.size_, 0);
  fd_ = std::exchange(o.fd_, -1);
  writable_ = std::exchange(o.writable_, false);
  path_ = std::move(o.path_);
  o.path_.clear();
  return *this;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
  writable_ = false;
}

MappedFile MappedFile::map_readonly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DCOLOR_CHECK_MSG(fd >= 0, "cannot open '" << path
                                            << "': " << std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    DCOLOR_CHECK_MSG(false,
                     "cannot stat '" << path << "': " << std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    DCOLOR_CHECK_MSG(false, "'" << path << "' is empty");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    DCOLOR_CHECK_MSG(false,
                     "cannot mmap '" << path << "': " << std::strerror(err));
  }
  MappedFile f;
  f.data_ = static_cast<std::byte*>(p);
  f.size_ = size;
  f.fd_ = fd;
  f.writable_ = false;
  f.path_ = path;
  record_map(size);
  return f;
}

MappedFile MappedFile::create_rw(const std::string& path, std::size_t size) {
  DCOLOR_CHECK_MSG(size > 0, "create_rw: zero-sized mapping");
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  DCOLOR_CHECK_MSG(fd >= 0, "cannot create '" << path << "': "
                                              << std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int err = errno;
    ::close(fd);
    DCOLOR_CHECK_MSG(false, "cannot size '" << path << "' to " << size
                                            << " bytes: "
                                            << std::strerror(err));
  }
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    DCOLOR_CHECK_MSG(false,
                     "cannot mmap '" << path << "': " << std::strerror(err));
  }
  MappedFile f;
  f.data_ = static_cast<std::byte*>(p);
  f.size_ = size;
  f.fd_ = fd;
  f.writable_ = true;
  f.path_ = path;
  record_map(size);
  return f;
}

void MappedFile::sync() {
  DCOLOR_CHECK_MSG(writable_, "sync on a read-only mapping");
  DCOLOR_CHECK_MSG(::msync(data_, size_, MS_SYNC) == 0,
                   "msync '" << path_ << "': " << std::strerror(errno));
}

void MappedFile::advise_dontneed() const noexcept {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_DONTNEED);
}

void MappedFile::advise_sequential() const noexcept {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

std::size_t MappedFile::page_size() noexcept {
  const long p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096;
}

}  // namespace dcolor
