#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <unordered_set>
#include <utility>

#include "check/invariant_checker.h"
#include "core/solver_registry.h"
#include "graph/generators.h"
#include "io/edge_list.h"
#include "io/instance_io.h"
#include "obs/stats.h"
#include "serve/dynamic_instance.h"
#include "sim/batch_runner.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor::serve {

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::int64_t distinct_colors(const std::vector<Color>& colors) {
  std::unordered_set<Color> seen;
  for (const Color c : colors) {
    if (c != kNoColor) seen.insert(c);
  }
  return static_cast<std::int64_t>(seen.size());
}

/// Mirrors the batch runner's generator dispatch for `create` requests.
Graph build_generator_graph(const std::string& generator, NodeId n,
                            int degree, Rng& rng) {
  DCOLOR_CHECK_MSG(n >= 2, "create: generator needs n >= 2 (got " << n
                                                                  << ")");
  if (generator == "gnp") {
    return gnp_avg_degree(n, static_cast<double>(degree), rng);
  }
  if (generator == "regular") {
    return random_near_regular(n, std::max(1, degree), rng);
  }
  if (generator == "tree") return random_tree(n, rng);
  if (generator == "geometric") {
    const double radius =
        std::sqrt(static_cast<double>(degree + 1) /
                  (3.14159265358979323846 * static_cast<double>(n)));
    return random_geometric(n, std::min(1.0, radius), rng);
  }
  if (generator == "cycle") return cycle(std::max<NodeId>(3, n));
  DCOLOR_CHECK_MSG(false, "create: unknown generator '"
                              << generator
                              << "' (gnp|regular|tree|geometric|cycle)");
  return {};
}

constexpr std::size_t kMaxLineBytes = 16u << 20;  ///< hostile-input guard

}  // namespace

bool ConnWriter::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  std::string data;
  data.reserve(line.size() + 1);
  data.append(line).push_back('\n');
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void ConnWriter::retire() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

/// One warm resident instance plus its per-session observability state.
/// `mutex` serializes every request touching the session, so the stats
/// registry and violation log need no locking of their own — and two
/// requests can never race on the instance.
struct Server::Session {
  std::mutex mutex;
  std::unique_ptr<DynamicInstance> instance;
  StatsRegistry stats;
  std::vector<CheckViolation> violations;  ///< collect-mode accumulation
  std::uint64_t seed = 1;
  std::int64_t requests = 0;  ///< per-request RNG stream derivation
  /// Last time a request named this session (guarded by Server::mutex_,
  /// not the session mutex — eviction must read it without blocking on
  /// in-flight work).
  std::chrono::steady_clock::time_point last_used;
  /// Heavy requests (solve/recolor) queued or running right now, bounded
  /// by ServerOptions::session_quota.
  std::atomic<int> queued{0};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(std::max(1, options_.workers)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DCOLOR_CHECK_MSG(listen_fd_ >= 0, "serve: socket() failed: "
                                        << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  DCOLOR_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) == 0,
      "serve: cannot bind 127.0.0.1:" << options_.port << ": "
                                      << std::strerror(errno));
  DCOLOR_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                   "serve: listen() failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  if (options_.session_ttl > 0) {
    evictor_ = std::thread([this] { eviction_loop(); });
  }
}

Server::~Server() {
  shutdown();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (evictor_.joinable()) evictor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // scheduler_ drains on destruction, after every producer is gone.
}

void Server::shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  evict_cv_.notify_all();
}

void Server::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or broken beyond repair)
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    client_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  // The writer outlives this loop via the shared_ptr captured by async
  // tasks; retire() below means their late write_line() calls return
  // false instead of hitting a recycled fd.
  const auto conn = std::make_shared<ConnWriter>(fd);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes) break;  // unterminated flood
    std::size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      JsonValue response;
      bool stop_after = false;
      try {
        const JsonValue request = JsonValue::parse(line);
        stop_after = request.get_string("op", "") == "shutdown";
        response = handle(request, conn);
      } catch (const std::exception& e) {
        response = JsonValue::object();
        response.set("ok", false).set("error", std::string(e.what()));
        stop_after = false;
      }
      open = conn->write_line(response.dump());
      if (stop_after) {
        shutdown();
        open = false;
      }
    }
  }
  conn->retire();
}

JsonValue Server::handle(const JsonValue& request) {
  return handle(request, nullptr);
}

JsonValue Server::handle(const JsonValue& request,
                         const std::shared_ptr<ConnWriter>& conn) {
  JsonValue response;
  try {
    response = dispatch(request, conn);
    if (response.get("ok") == nullptr) response.set("ok", true);
  } catch (const std::exception& e) {
    response = JsonValue::object();
    response.set("ok", false).set("error", std::string(e.what()));
  }
  if (const JsonValue* id = request.get("id")) {
    response.set("id", *id);
  }
  return response;
}

std::shared_ptr<Server::Session> Server::find_session(
    const JsonValue& request) {
  const std::string& name = request.require("session").as_string("session");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    DCOLOR_CHECK_MSG(evicted_.find(name) == evicted_.end(),
                     "session \"" << name << "\" was evicted after "
                                  << options_.session_ttl
                                  << "s idle (--session-ttl); create it "
                                  << "again");
    DCOLOR_CHECK_MSG(false, "unknown session \"" << name << "\"");
  }
  it->second->last_used = std::chrono::steady_clock::now();
  return it->second;
}

void Server::reserve_quota(const std::string& name, Session& session) {
  const int quota = options_.session_quota;
  if (quota < 0) return;
  const int prev = session.queued.fetch_add(1, std::memory_order_relaxed);
  if (prev >= quota) {
    session.queued.fetch_sub(1, std::memory_order_relaxed);
    DCOLOR_CHECK_MSG(false, "session \""
                                << name << "\" is at its heavy-request "
                                << "quota (" << quota
                                << " queued; --session-quota); retry when "
                                << "in-flight work lands");
  }
}

void Server::eviction_loop() {
  const std::chrono::duration<double> ttl(options_.session_ttl);
  const auto wake =
      std::chrono::duration_cast<std::chrono::milliseconds>(ttl) / 2 +
      std::chrono::milliseconds(10);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_.load()) {
    evict_cv_.wait_for(lock, wake);
    if (stopping_.load()) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (now - it->second->last_used >= ttl) {
        // An in-flight heavy request keeps the Session alive through its
        // shared_ptr; eviction only unmaps the name.
        evicted_.insert(it->first);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    if (evicted_.size() > 4096) evicted_.clear();
  }
}

JsonValue Server::dispatch(const JsonValue& request,
                           const std::shared_ptr<ConnWriter>& conn) {
  DCOLOR_CHECK_MSG(request.is_object(), "request must be a JSON object");
  const std::string op = request.require("op").as_string("op");
  JsonValue response = JsonValue::object();
  if (op == "ping") {
    response.set("pong", true);
    return response;
  }
  if (op == "shutdown") {
    response.set("stopping", true);
    return response;
  }
  if (op == "create") return op_create(request);
  if (op == "batch") return op_batch(request, conn);
  if (op == "drop") {
    const std::string& name =
        request.require("session").as_string("session");
    const std::lock_guard<std::mutex> lock(mutex_);
    DCOLOR_CHECK_MSG(sessions_.erase(name) == 1,
                     "unknown session \"" << name << "\"");
    evicted_.erase(name);
    response.set("dropped", name);
    return response;
  }

  const std::shared_ptr<Session> session = find_session(request);
  if (op == "solve" || op == "recolor") {
    // Heavy requests are level-1 tasks of the unified scheduler: the
    // connection thread enqueues and (sync form) blocks on the future, so
    // a fixed worker budget serves any number of connections and
    // per-connection order is preserved. Big resident instances profit
    // from level 2 automatically — the request runs on a worker, where
    // the ambient scheduler turns simulator rounds into stealable chunks.
    const std::string& name =
        request.require("session").as_string("session");
    reserve_quota(name, *session);
    const bool is_solve = op == "solve";
    if (request.get_bool("async", false) && conn != nullptr) {
      // Fire-and-forget: ack now, push a {"event":...} line when it lands.
      scheduler_.submit([this, req = request, session, conn, is_solve] {
        JsonValue event = JsonValue::object();
        event.set("event", is_solve ? "solve_done" : "recolor_done");
        if (const JsonValue* s = req.get("session")) event.set("session", *s);
        if (const JsonValue* id = req.get("id")) event.set("id", *id);
        try {
          const std::lock_guard<std::mutex> lock(session->mutex);
          const JsonValue result = is_solve ? op_solve(req, *session)
                                            : op_recolor(req, *session);
          event.set("ok", true);
          for (const auto& [key, value] : result.members()) {
            event.set(key, value);
          }
        } catch (const std::exception& e) {
          event.set("ok", false).set("error", std::string(e.what()));
        }
        session->queued.fetch_sub(1, std::memory_order_relaxed);
        conn->write_line(event.dump());
      });
      response.set("queued", true);
      return response;
    }
    auto task = std::make_shared<std::packaged_task<JsonValue()>>(
        [this, &request, session, is_solve] {
          const std::lock_guard<std::mutex> lock(session->mutex);
          struct Release {
            std::atomic<int>* queued;
            ~Release() { queued->fetch_sub(1, std::memory_order_relaxed); }
          } release{&session->queued};
          return is_solve ? op_solve(request, *session)
                          : op_recolor(request, *session);
        });
    std::future<JsonValue> fut = task->get_future();
    scheduler_.submit([task] { (*task)(); });
    return fut.get();
  }
  const std::lock_guard<std::mutex> lock(session->mutex);
  if (op == "mutate") return op_mutate(request, *session);
  if (op == "query") return op_query(request, *session);
  if (op == "info") return op_info(*session);
  if (op == "stats") return op_stats(request, *session);
  DCOLOR_CHECK_MSG(false, "unknown op \"" << op << "\"");
  return response;
}

JsonValue Server::op_create(const JsonValue& request) {
  const std::string& name = request.require("session").as_string("session");
  const auto seed =
      static_cast<std::uint64_t>(request.get_int("seed", 1));
  const int headroom = static_cast<int>(
      request.get_int("headroom", options_.headroom));

  NodeId n = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (const JsonValue* gen = request.get("generator")) {
    Rng rng(seed);
    const Graph g = build_generator_graph(
        gen->as_string("generator"),
        static_cast<NodeId>(request.require("n").as_int("n")),
        static_cast<int>(request.get_int("degree", 8)), rng);
    n = g.num_nodes();
    edges = g.edge_list();
  } else if (const JsonValue* list = request.get("edges")) {
    NodeId max_id = -1;
    for (const JsonValue& e : list->as_array("edges")) {
      const auto& pair = e.as_array("edge");
      DCOLOR_CHECK_MSG(pair.size() == 2, "create: edges entries are [u, v]");
      const auto u = static_cast<NodeId>(pair[0].as_int("u"));
      const auto v = static_cast<NodeId>(pair[1].as_int("v"));
      edges.emplace_back(u, v);
      max_id = std::max({max_id, u, v});
    }
    n = static_cast<NodeId>(request.get_int("n", max_id + 1));
  } else if (const JsonValue* path = request.get("path")) {
    // Text graph or binary snapshot, sniffed by the io/storage seams.
    const Graph g = load_graph(path->as_string("path"));
    n = g.num_nodes();
    edges = g.edge_list();
  } else if (const JsonValue* path = request.get("edge_list")) {
    const Graph g = load_edge_list(path->as_string("edge_list"));
    n = g.num_nodes();
    edges = g.edge_list();
  } else {
    DCOLOR_CHECK_MSG(
        false, "create needs \"generator\", \"edges\", \"path\", or "
               "\"edge_list\"");
  }

  auto session = std::make_shared<Session>();
  session->seed = seed;
  session->last_used = std::chrono::steady_clock::now();
  session->instance = std::make_unique<DynamicInstance>(n, std::move(edges),
                                                        headroom, seed);
  JsonValue response = JsonValue::object();
  response.set("session", name)
      .set("nodes", static_cast<std::int64_t>(session->instance->num_nodes()))
      .set("edges", session->instance->num_edges())
      .set("color_space", session->instance->color_space());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DCOLOR_CHECK_MSG(sessions_.find(name) == sessions_.end(),
                     "session \"" << name << "\" already exists (drop it "
                                  << "first)");
    evicted_.erase(name);  // a recreated name is a live session again
    sessions_.emplace(name, std::move(session));
  }
  return response;
}

JsonValue Server::op_batch(const JsonValue& request,
                           const std::shared_ptr<ConnWriter>& conn) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<BatchJob> jobs =
      parse_batch_jobs(request.require("jobs").as_string("jobs"));
  BatchOptions options;
  options.check = request.get_bool("verify", false) || !options_.check.empty();
  options.seed = static_cast<std::uint64_t>(request.get_int("seed", 0));
  options.big_job_threshold =
      request.get_int("threshold", options_.big_job_threshold);
  options.scheduler = &scheduler_;  // share the daemon's worker budget
  const bool stream = request.get_bool("stream", false) && conn != nullptr;
  if (stream) {
    options.on_result = [&conn](std::size_t index, const BatchJobResult& r) {
      conn->write_line(batch_stream_line(index, r));
    };
  }
  const BatchReport report = run_batch(jobs, options);
  if (stream) conn->write_line(batch_stream_summary(report));
  JsonValue response = JsonValue::object();
  response.set("jobs", static_cast<std::int64_t>(report.jobs.size()))
      .set("jobs_valid", report.jobs_valid)
      .set("jobs_failed", report.jobs_failed)
      .set("total_rounds", report.total_rounds)
      .set("violations", report.total_violations)
      .set("big_jobs", report.sched.big_jobs)
      .set("wall_ms", wall_ms_since(start));
  return response;
}

JsonValue Server::op_solve(const JsonValue& request, Session& session) {
  const auto start = std::chrono::steady_clock::now();
  const std::string solver_name =
      request.get_string("solver", options_.default_solver);
  const Solver& solver = SolverRegistry::get().require(solver_name);
  const SolverCapabilities caps = solver.capabilities();
  using Input = SolverCapabilities::Input;
  DCOLOR_CHECK_MSG(
      caps.lists && (caps.input == Input::kListDefective ||
                     caps.input == Input::kArbdefective),
      "solver '" << solver_name
                 << "' does not accept the session's list instance; pick a "
                    "list-defective solver (e.g. deg_plus_one)");

  DynamicInstance& inst = *session.instance;
  const Graph g = inst.materialize();
  ListDefectiveInstance ldi;
  ldi.graph = &g;
  ldi.lists = inst.lists().borrow();
  ldi.color_space = inst.color_space();
  SolveRequest req;
  req.list_defective = &ldi;
  req.params.p = static_cast<int>(request.get_int("p", 2));

  // The per-request scope: checker + the session's stats registry live on
  // this worker thread for exactly this request.
  InvariantChecker checker(options_.check == "collect"
                               ? InvariantChecker::Mode::kCollect
                               : InvariantChecker::Mode::kThrow);
  RunContext ctx;
  ctx.seed = session.seed + static_cast<std::uint64_t>(++session.requests);
  ctx.num_threads = 1;  // the request axis is the parallel one
  ctx.stats = &session.stats;
  if (!options_.check.empty()) ctx.checker = &checker;
  RunScope scope(ctx);

  SolveResult res = solver.solve(req, ctx);
  DCOLOR_CHECK_MSG(validate_solve(req, caps, res),
                   "solver '" << solver_name << "' returned an invalid "
                              << "coloring");
  inst.set_colors(std::move(res.colors));
  if (ctx.checker != nullptr) {
    ctx.checker->check_list_defective(ldi, inst.colors(), "serve/solve");
  }
  session.violations.insert(session.violations.end(),
                            checker.violations().begin(),
                            checker.violations().end());
  session.stats.counter("serve.solves").add(1);

  JsonValue response = JsonValue::object();
  response.set("solver", solver_name)
      .set("nodes", static_cast<std::int64_t>(inst.num_nodes()))
      .set("colors_used", distinct_colors(inst.colors()))
      .set("rounds", res.metrics.rounds)
      .set("wall_ms", wall_ms_since(start));
  return response;
}

JsonValue Server::op_mutate(const JsonValue& request, Session& session) {
  DynamicInstance& inst = *session.instance;
  const std::string kind = request.require("kind").as_string("kind");
  bool applied = false;
  JsonValue response = JsonValue::object();
  if (kind == "add_edge" || kind == "remove_edge") {
    const auto u = static_cast<NodeId>(request.require("u").as_int("u"));
    const auto v = static_cast<NodeId>(request.require("v").as_int("v"));
    applied = kind == "add_edge" ? inst.add_edge(u, v)
                                 : inst.remove_edge(u, v);
  } else if (kind == "add_node") {
    response.set("node", static_cast<std::int64_t>(inst.add_node()));
    applied = true;
  } else if (kind == "remove_node") {
    applied = inst.remove_node(
        static_cast<NodeId>(request.require("u").as_int("u")));
  } else {
    DCOLOR_CHECK_MSG(false, "mutate: unknown kind \"" << kind << "\"");
  }
  session.stats.counter("serve.mutations").add(1);
  response.set("applied", applied)
      .set("nodes", static_cast<std::int64_t>(inst.num_nodes()))
      .set("edges", inst.num_edges())
      .set("dirty", static_cast<std::int64_t>(inst.dirty().size()));
  return response;
}

JsonValue Server::op_recolor(const JsonValue& request, Session& session) {
  const auto start = std::chrono::steady_clock::now();
  DynamicInstance& inst = *session.instance;
  DCOLOR_CHECK_MSG(inst.has_coloring(),
                   "recolor: session has no coloring yet; solve first");

  InvariantChecker checker(options_.check == "collect"
                               ? InvariantChecker::Mode::kCollect
                               : InvariantChecker::Mode::kThrow);
  RunContext ctx;
  ctx.seed = session.seed + static_cast<std::uint64_t>(++session.requests);
  ctx.num_threads = 1;
  ctx.stats = &session.stats;
  if (!options_.check.empty()) ctx.checker = &checker;
  RunScope scope(ctx);

  RecolorOptions opts;
  opts.p = static_cast<int>(request.get_int("p", 2));
  std::string fallback = "none";
  RecolorResult result;
  try {
    result = inst.recolor(ctx, opts);
    if (result.used_greedy_fallback) fallback = "greedy";
  } catch (const CheckError&) {
    // Local repair is impossible (the checker may also have vetoed it in
    // throw mode): fall back to a from-scratch solve, which also clears
    // the dirty set.
    const std::vector<Color> before = inst.colors();
    JsonValue solve_request = JsonValue::object();
    const JsonValue solved = op_solve(solve_request, session);
    fallback = "full";
    result = RecolorResult{};
    result.colors = inst.colors();
    result.dirty_nodes = static_cast<std::int64_t>(before.size());
    result.rounds = solved.require("rounds").as_int("rounds");
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (i >= result.colors.size() || before[i] != result.colors[i]) {
        ++result.colors_changed;
      }
    }
  }
  if (ctx.checker != nullptr && fallback != "full") {
    // Verify the repaired coloring against the FULL instance, not just
    // the dirty subgraph the repair solved.
    const Graph g = inst.materialize();
    ListDefectiveInstance ldi;
    ldi.graph = &g;
    ldi.lists = inst.lists().borrow();
    ldi.color_space = inst.color_space();
    ctx.checker->check_list_defective(ldi, inst.colors(), "serve/recolor");
  }
  session.violations.insert(session.violations.end(),
                            checker.violations().begin(),
                            checker.violations().end());
  session.stats.counter("serve.recolors").add(1);
  session.stats.histogram("serve.recolor_changed")
      .record(result.colors_changed);

  JsonValue response = JsonValue::object();
  response.set("colors_changed", result.colors_changed)
      .set("dirty_nodes", result.dirty_nodes)
      .set("rounds", result.rounds)
      .set("fallback", fallback)
      .set("wall_ms", wall_ms_since(start));
  return response;
}

JsonValue Server::op_query(const JsonValue& request, Session& session) {
  const DynamicInstance& inst = *session.instance;
  DCOLOR_CHECK_MSG(inst.has_coloring(), "query: session has no coloring");
  JsonValue colors = JsonValue::array();
  if (const JsonValue* nodes = request.get("nodes")) {
    for (const JsonValue& nv : nodes->as_array("nodes")) {
      const auto v = static_cast<NodeId>(nv.as_int("node"));
      DCOLOR_CHECK_MSG(v >= 0 && v < inst.num_nodes(),
                       "query: node " << v << " out of range");
      colors.push_back(inst.colors()[static_cast<std::size_t>(v)]);
    }
  } else {
    for (const Color c : inst.colors()) colors.push_back(c);
  }
  JsonValue response = JsonValue::object();
  response.set("colors", std::move(colors));
  return response;
}

JsonValue Server::op_info(Session& session) {
  const DynamicInstance& inst = *session.instance;
  std::int64_t alive = 0;
  for (NodeId v = 0; v < inst.num_nodes(); ++v) {
    if (inst.alive(v)) ++alive;
  }
  JsonValue response = JsonValue::object();
  response.set("nodes", static_cast<std::int64_t>(inst.num_nodes()))
      .set("alive", alive)
      .set("edges", inst.num_edges())
      .set("color_space", inst.color_space())
      .set("colored", inst.has_coloring())
      .set("dirty", static_cast<std::int64_t>(inst.dirty().size()))
      .set("violations",
           static_cast<std::int64_t>(session.violations.size()));
  return response;
}

JsonValue Server::op_stats(const JsonValue& request, Session& session) {
  const std::string format = request.get_string("format", "json");
  JsonValue response = JsonValue::object();
  if (format == "json") {
    response.set("stats", session.stats.to_json());
  } else if (format == "prom" || format == "prometheus") {
    response.set("stats", session.stats.to_prometheus());
  } else {
    DCOLOR_CHECK_MSG(false, "stats: unknown format \"" << format
                                                       << "\" (json|prom)");
  }
  return response;
}

}  // namespace dcolor::serve
