#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace dcolor::serve {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    DCOLOR_CHECK_MSG(pos_ == text_.size(),
                     "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;  ///< stack guard for hostile input

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    DCOLOR_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    DCOLOR_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                     "json: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    DCOLOR_CHECK_MSG(depth < kMaxDepth, "json: nesting deeper than "
                                            << kMaxDepth);
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        DCOLOR_CHECK_MSG(consume_literal("true"),
                         "json: bad literal at offset " << pos_);
        return JsonValue(true);
      case 'f':
        DCOLOR_CHECK_MSG(consume_literal("false"),
                         "json: bad literal at offset " << pos_);
        return JsonValue(false);
      case 'n':
        DCOLOR_CHECK_MSG(consume_literal("null"),
                         "json: bad literal at offset " << pos_);
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      DCOLOR_CHECK_MSG(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        DCOLOR_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                         "json: raw control character in string");
        out.push_back(c);
        continue;
      }
      DCOLOR_CHECK_MSG(pos_ < text_.size(), "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode(out); break;
        default:
          DCOLOR_CHECK_MSG(false, "json: bad escape '\\" << e << "'");
      }
    }
  }

  void append_unicode(std::string& out) {
    DCOLOR_CHECK_MSG(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<std::uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<std::uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<std::uint32_t>(h - 'A' + 10);
      } else {
        DCOLOR_CHECK_MSG(false, "json: bad \\u escape digit '" << h << "'");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs unsupported — the
    // protocol's strings are identifiers and error text, all ASCII).
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    DCOLOR_CHECK_MSG(!token.empty() && token != "-",
                     "json: bad number at offset " << start);
    // JSON forbids leading zeros ("01"); "0" and "0.5" stay legal.
    const std::size_t first = token[0] == '-' ? 1 : 0;
    DCOLOR_CHECK_MSG(first + 1 >= token.size() || token[first] != '0' ||
                         !std::isdigit(static_cast<unsigned char>(
                             token[first + 1])),
                     "json: leading zero in number '" << token << "'");
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      DCOLOR_CHECK_MSG(errno == 0 && end == token.c_str() + token.size(),
                       "json: bad integer '" << token << "'");
      return JsonValue(static_cast<std::int64_t>(v));
    }
    const double v = std::strtod(token.c_str(), &end);
    DCOLOR_CHECK_MSG(errno == 0 && end == token.c_str() + token.size() &&
                         std::isfinite(v),
                     "json: bad number '" << token << "'");
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool JsonValue::as_bool(std::string_view what) const {
  DCOLOR_CHECK_MSG(kind_ == Kind::kBool, "json: " << what << " must be a bool");
  return bool_;
}

std::int64_t JsonValue::as_int(std::string_view what) const {
  DCOLOR_CHECK_MSG(kind_ == Kind::kInt,
                   "json: " << what << " must be an integer");
  return int_;
}

double JsonValue::as_double(std::string_view what) const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  DCOLOR_CHECK_MSG(kind_ == Kind::kDouble,
                   "json: " << what << " must be a number");
  return double_;
}

const std::string& JsonValue::as_string(std::string_view what) const {
  DCOLOR_CHECK_MSG(kind_ == Kind::kString,
                   "json: " << what << " must be a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(std::string_view what) const {
  DCOLOR_CHECK_MSG(kind_ == Kind::kArray,
                   "json: " << what << " must be an array");
  return elements_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::require(std::string_view key) const {
  const JsonValue* v = get(key);
  DCOLOR_CHECK_MSG(v != nullptr, "request is missing \"" << key << "\"");
  return *v;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_int(key);
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_double(key);
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? std::move(fallback) : v->as_string(key);
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_bool(key);
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  DCOLOR_CHECK_MSG(kind_ == Kind::kObject || kind_ == Kind::kNull,
                   "json: set() on a non-object");
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  DCOLOR_CHECK_MSG(kind_ == Kind::kArray || kind_ == Kind::kNull,
                   "json: push_back() on a non-array");
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      break;
    }
    case Kind::kString:
      dump_string(string_, out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : elements_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace dcolor::serve
