// The coloring-as-a-service daemon behind `dcolor --cmd=serve`.
//
// Speaks line-delimited JSON over a local TCP socket: one request object
// per line, one response object per line, answered in request order per
// connection (streamed "event" lines may precede a response — see
// below). Sessions are named, warm, resident DynamicInstances shared
// across connections; heavy requests (solve, recolor, batch jobs) run as
// level-1 tasks of the unified scheduler (sim/scheduler.h) so a fixed
// worker budget serves any number of connections, and every such request
// executes under its own RunScope — a per-request invariant checker and
// the session's stats registry are installed on the worker thread for
// exactly the request's duration, so checking and metrics compose per
// session without any cross-session bleed (requests on one session are
// serialized by the session mutex).
//
// Hygiene: sessions idle longer than --session-ttl seconds are evicted
// by a timer (an evicted name answers with a clean JSON error, never a
// crash), and each session admits at most --session-quota queued heavy
// requests at a time.
//
// Protocol (all requests may carry "id", echoed in the response; every
// response has "ok", errors add "error"):
//   {"op":"ping"}
//   {"op":"create","session":"s","generator":"gnp","n":1000,"degree":8,
//    "seed":1}                      — or "edges":[[u,v],...] ("n" optional)
//                                   — or "path":"g.snap" (graph/snapshot
//                                     via io/storage), "edge_list":"f.txt"
//   {"op":"solve","session":"s","solver":"deg_plus_one"}
//        add "async":true to get {"ok":true,"queued":true} immediately
//        and a {"event":"solve_done",...} line on this connection when
//        the solve lands (socket connections only)
//   {"op":"mutate","session":"s","kind":"add_edge","u":0,"v":1}
//        kinds: add_edge | remove_edge | add_node | remove_node ("u")
//   {"op":"recolor","session":"s"}  — incremental repair of the dirty set
//   {"op":"query","session":"s","nodes":[0,1]}   — colors of given nodes
//   {"op":"info","session":"s"}
//   {"op":"stats","session":"s","format":"json"|"prom"}
//   {"op":"batch","jobs":"<spec>","stream":true,"seed":0,"verify":false,
//    "threshold":-1}  — run a batch (sim/batch_runner.h spec grammar) on
//        the daemon's scheduler; with "stream":true every completed job
//        is pushed as a {"event":"job",...} JSONL line (commit order =
//        job index order) before the final summary response
//   {"op":"drop","session":"s"}
//   {"op":"shutdown"}
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "sim/scheduler.h"

namespace dcolor::serve {

struct ServerOptions {
  int port = 0;          ///< 0 = ephemeral (read the bound port back)
  int workers = 4;       ///< scheduler workers for heavy requests
  std::string check;     ///< "": no checker; "collect"/"throw" per request
  int headroom = 2;      ///< list slack past deg+1 for resident instances
  std::string default_solver = "deg_plus_one";
  /// Max heavy requests (solve/recolor) queued or running per session at
  /// once; the excess gets a clean JSON error. < 0 = unlimited. 0 is the
  /// degenerate "reject all heavy traffic" setting (used in tests).
  int session_quota = 64;
  /// Seconds a session may sit idle (no request naming it) before the
  /// eviction timer drops it; 0 = never evict. Accessing an evicted
  /// session returns a JSON error saying so.
  double session_ttl = 0;
  /// Default level-2 threshold for `op:batch` (see BatchOptions).
  std::int64_t big_job_threshold = -1;
};

/// Serialized line writer over one connection: responses from the
/// connection thread and event lines from scheduler workers (async
/// solves, streamed batch jobs) interleave whole-line-atomically.
/// retire() closes the fd under the same lock, so a late async event can
/// never write to a recycled descriptor.
class ConnWriter {
 public:
  explicit ConnWriter(int fd) : fd_(fd) {}

  /// Writes line + '\n'; false once the connection is gone.
  bool write_line(const std::string& line);

  /// Closes the fd; subsequent writes return false.
  void retire();

 private:
  std::mutex mutex_;
  int fd_;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (valid after construction; ephemeral ports resolved).
  int port() const noexcept { return port_; }

  /// Accept loop; returns after a shutdown request (or shutdown() call).
  void run();

  /// Thread-safe stop: unblocks run() and closes every connection.
  void shutdown();

  /// Handles one already-parsed request (the protocol core, exposed so
  /// tests can drive the daemon without sockets). The connection-less
  /// overload cannot stream: "async":true and "stream":true degrade to
  /// their synchronous/quiet forms.
  JsonValue handle(const JsonValue& request);
  JsonValue handle(const JsonValue& request,
                   const std::shared_ptr<ConnWriter>& conn);

 private:
  struct Session;

  void serve_connection(int fd);
  void eviction_loop();
  JsonValue dispatch(const JsonValue& request,
                     const std::shared_ptr<ConnWriter>& conn);
  std::shared_ptr<Session> find_session(const JsonValue& request);

  JsonValue op_create(const JsonValue& request);
  JsonValue op_solve(const JsonValue& request, Session& session);
  JsonValue op_mutate(const JsonValue& request, Session& session);
  JsonValue op_recolor(const JsonValue& request, Session& session);
  JsonValue op_query(const JsonValue& request, Session& session);
  JsonValue op_info(Session& session);
  JsonValue op_stats(const JsonValue& request, Session& session);
  JsonValue op_batch(const JsonValue& request,
                     const std::shared_ptr<ConnWriter>& conn);

  /// Reserves one unit of the session's heavy-request quota or throws
  /// the clean JSON error; the matching release happens when the task
  /// finishes.
  void reserve_quota(const std::string& name, Session& session);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  sched::Scheduler scheduler_;

  std::mutex mutex_;  ///< guards sessions_, evicted_, client_fds_
  std::condition_variable evict_cv_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  /// Names dropped by the TTL timer, so their next access can say
  /// "evicted" instead of "unknown" (cleared wholesale when large — the
  /// distinction is a courtesy, not an audit log).
  std::set<std::string> evicted_;
  std::vector<int> client_fds_;
  std::vector<std::thread> connections_;
  std::thread evictor_;
};

}  // namespace dcolor::serve
