// The coloring-as-a-service daemon behind `dcolor --cmd=serve`.
//
// Speaks line-delimited JSON over a local TCP socket: one request object
// per line, one response object per line, answered in request order per
// connection. Sessions are named, warm, resident DynamicInstances shared
// across connections; heavy requests (solve, recolor) are queued onto a
// shared detail::TaskQueue so a fixed worker budget serves any number of
// connections, and every such request executes under its own RunScope —
// a per-request invariant checker and the session's stats registry are
// installed on the worker thread for exactly the request's duration, so
// checking and metrics compose per session without any cross-session
// bleed (requests on one session are serialized by the session mutex).
//
// Protocol (all requests may carry "id", echoed in the response; every
// response has "ok", errors add "error"):
//   {"op":"ping"}
//   {"op":"create","session":"s","generator":"gnp","n":1000,"degree":8,
//    "seed":1}                      — or "edges":[[u,v],...] ("n" optional)
//                                   — or "path":"g.snap" (graph/snapshot
//                                     via io/storage), "edge_list":"f.txt"
//   {"op":"solve","session":"s","solver":"deg_plus_one"}
//   {"op":"mutate","session":"s","kind":"add_edge","u":0,"v":1}
//        kinds: add_edge | remove_edge | add_node | remove_node ("u")
//   {"op":"recolor","session":"s"}  — incremental repair of the dirty set
//   {"op":"query","session":"s","nodes":[0,1]}   — colors of given nodes
//   {"op":"info","session":"s"}
//   {"op":"stats","session":"s","format":"json"|"prom"}
//   {"op":"drop","session":"s"}
//   {"op":"shutdown"}
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "sim/thread_pool.h"

namespace dcolor::serve {

struct ServerOptions {
  int port = 0;          ///< 0 = ephemeral (read the bound port back)
  int workers = 4;       ///< TaskQueue threads for solve/recolor requests
  std::string check;     ///< "": no checker; "collect"/"throw" per request
  int headroom = 2;      ///< list slack past deg+1 for resident instances
  std::string default_solver = "deg_plus_one";
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (valid after construction; ephemeral ports resolved).
  int port() const noexcept { return port_; }

  /// Accept loop; returns after a shutdown request (or shutdown() call).
  void run();

  /// Thread-safe stop: unblocks run() and closes every connection.
  void shutdown();

  /// Handles one already-parsed request (the protocol core, exposed so
  /// tests can drive the daemon without sockets).
  JsonValue handle(const JsonValue& request);

 private:
  struct Session;

  void serve_connection(int fd);
  JsonValue dispatch(const JsonValue& request);
  std::shared_ptr<Session> find_session(const JsonValue& request);

  JsonValue op_create(const JsonValue& request);
  JsonValue op_solve(const JsonValue& request, Session& session);
  JsonValue op_mutate(const JsonValue& request, Session& session);
  JsonValue op_recolor(const JsonValue& request, Session& session);
  JsonValue op_query(const JsonValue& request, Session& session);
  JsonValue op_info(Session& session);
  JsonValue op_stats(const JsonValue& request, Session& session);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  detail::TaskQueue queue_;

  std::mutex mutex_;  ///< guards sessions_ and client_fds_
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<int> client_fds_;
  std::vector<std::thread> connections_;
};

}  // namespace dcolor::serve
