// Minimal blocking client for the serve daemon (serve/server.h).
//
// One TCP connection, one request in flight: call() writes a request
// line, blocks for the response line, and returns it parsed. Used by
// `dcolor --cmd=client`, the serve tests, and cli_smoke.sh round-trips.
#pragma once

#include <string>

#include "serve/json.h"

namespace dcolor::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:port; throws CheckError on failure.
  explicit Client(int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request, blocks for its response. Throws CheckError when
  /// the connection drops or the response line is not valid JSON.
  JsonValue call(const JsonValue& request);

  /// Raw line round-trip (for --cmd=client, which forwards stdin lines).
  std::string call_line(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last response line
};

}  // namespace dcolor::serve
