// Minimal blocking client for the serve daemon (serve/server.h).
//
// One TCP connection, one request in flight: call() writes a request
// line, blocks for the response line, and returns it parsed. The daemon
// may interleave pushed "event" lines (streamed `op:batch` jobs, async
// solve notifications) before/independently of a response; the on_event
// overloads surface them and `wait_event()` blocks for a standalone one.
// Used by `dcolor --cmd=client`, the serve tests, and cli_smoke.sh
// round-trips.
#pragma once

#include <functional>
#include <string>

#include "serve/json.h"

namespace dcolor::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:port; throws CheckError on failure.
  explicit Client(int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request, blocks for its response. Throws CheckError when
  /// the connection drops or the response line is not valid JSON.
  /// Pushed event lines arriving before the response are delivered to
  /// `on_event` (raw, one JSON object per line) when given, silently
  /// dropped otherwise.
  JsonValue call(const JsonValue& request);
  JsonValue call(const JsonValue& request,
                 const std::function<void(const std::string&)>& on_event);

  /// Raw line round-trips (for --cmd=client, which forwards stdin lines).
  std::string call_line(const std::string& line);
  std::string call_line(
      const std::string& line,
      const std::function<void(const std::string&)>& on_event);

  /// Blocks for the next pushed line without sending anything — how a
  /// caller collects an async solve's {"event":"solve_done",...}.
  std::string wait_line();
  JsonValue wait_event() { return JsonValue::parse(wait_line()); }

 private:
  /// Blocks for one '\n'-terminated line (newline stripped).
  std::string read_line();

  /// True when `line` parses to an object carrying "event" — a daemon
  /// push, not the response to the request in flight.
  static bool is_event_line(const std::string& line);

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last response line
};

}  // namespace dcolor::serve
