// A mutable resident coloring instance for serve sessions.
//
// The rest of the library works on immutable CSR graphs; a session of the
// serve daemon instead holds a DynamicInstance — adjacency as per-node
// sorted vectors so edges and nodes can be added/removed in O(deg), plus
// the per-node color lists, the current coloring, and the DIRTY SET of
// nodes whose colors the mutations may have invalidated.
//
// List maintenance follows the (deg+1)-list discipline of the batch
// runner's premise-by-construction instances: node v holds
// deg(v) + 1 + headroom distinct colors drawn deterministically from
// Rng::stream(seed, v), so the instance is always greedily colorable and
// Two-Sweep repair (core/recolor.h) has slack to work with. When an edge
// insertion pushes deg(v) past the list, the list is regrown — which is
// fine, because the endpoint is dirty anyway.
//
// Mutation/dirtiness contract (what `recolor` repairs):
//   * add_edge   — both endpoints become dirty (their colors may now
//                  collide, and their lists may have been regrown);
//   * remove_edge— never dirties: dropping a constraint cannot invalidate
//                  a zero-defect coloring;
//   * add_node   — the new node arrives isolated; if the instance is
//                  already colored it is colored immediately (any list
//                  color works), otherwise it just joins the uncolored
//                  instance. Never dirties.
//   * remove_node— detaches all incident edges and retires the slot (ids
//                  are stable; the slot stays, isolated and trivially
//                  colored). Never dirties the survivors.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/palette_store.h"
#include "core/recolor.h"
#include "core/run_context.h"
#include "graph/graph.h"

namespace dcolor::serve {

class DynamicInstance {
 public:
  /// Adopts an initial topology. `headroom` is the extra list slack past
  /// deg+1; `seed` drives every list draw (same seed + same mutation
  /// history = identical instance).
  DynamicInstance(NodeId num_nodes,
                  std::vector<std::pair<NodeId, NodeId>> edges, int headroom,
                  std::uint64_t seed);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  std::int64_t num_edges() const noexcept { return num_edges_; }
  std::int64_t color_space() const noexcept { return color_space_; }
  bool alive(NodeId v) const { return alive_[static_cast<std::size_t>(v)]; }

  std::span<const NodeId> neighbors(NodeId v) const {
    const auto& a = adj_[static_cast<std::size_t>(v)];
    return {a.data(), a.size()};
  }

  const PaletteStore& lists() const noexcept { return lists_; }

  // ---- mutations --------------------------------------------------------

  /// Adds edge {u,v}; false (and no-op) when it exists or u == v.
  bool add_edge(NodeId u, NodeId v);
  /// Removes edge {u,v}; false when absent.
  bool remove_edge(NodeId u, NodeId v);
  /// Appends a new isolated node; returns its id.
  NodeId add_node();
  /// Detaches and retires node v; false when already retired.
  bool remove_node(NodeId v);

  /// Nodes dirtied since the last recolor (sorted, deduplicated).
  std::vector<NodeId> dirty() const;
  bool has_dirty() const noexcept { return !dirty_.empty(); }

  // ---- coloring ---------------------------------------------------------

  bool has_coloring() const noexcept { return !colors_.empty(); }
  const std::vector<Color>& colors() const noexcept { return colors_; }

  /// Installs a full fresh coloring (a from-scratch solve) and clears the
  /// dirty set. Size must equal num_nodes().
  void set_colors(std::vector<Color> colors);

  /// Incrementally repairs the current coloring on the dirty region via
  /// core/recolor.h and clears the dirty set. Requires has_coloring().
  /// Throws CheckError when repair is impossible (caller falls back to a
  /// from-scratch solve; the dirty set is preserved in that case).
  RecolorResult recolor(RunContext& ctx, const RecolorOptions& options = {});

  /// Materializes the current topology as an immutable CSR graph (the
  /// from-scratch solve path and the verifier both need one).
  Graph materialize() const;

  /// True iff the current coloring is proper and in-list everywhere.
  bool validate() const;

 private:
  /// (Re)draws node v's list: deg(v) + 1 + headroom distinct colors from
  /// Rng::stream(seed_, v); grows color_space_ when lists outgrow it.
  void regrow_list(NodeId v, std::size_t min_size);
  void mark_dirty(NodeId v);

  std::vector<std::vector<NodeId>> adj_;  ///< sorted neighbor vectors
  std::vector<char> alive_;
  PaletteStore lists_;
  std::vector<Color> colors_;  ///< empty until first solve
  std::vector<NodeId> dirty_;
  std::vector<char> in_dirty_;
  std::int64_t num_edges_ = 0;
  std::int64_t color_space_ = 0;
  int headroom_ = 0;
  std::uint64_t seed_ = 1;
};

}  // namespace dcolor::serve
