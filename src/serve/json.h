// Minimal JSON value type for the serve protocol (serve/server.h).
//
// The daemon speaks line-delimited JSON: one request object per line in,
// one response object per line out. The library's other JSON surfaces
// only EMIT (trace JSONL, stats export); the daemon also has to PARSE
// untrusted request lines, so this module provides a small recursive-
// descent parser plus a writer, with the strictness conventions of the
// rest of the input layer: malformed input throws CheckError naming the
// offset, trailing garbage after the value is an error, and numbers keep
// int64 exactness when they have no fraction/exponent.
//
// Deliberately not a general JSON library: no Unicode escapes beyond
// \uXXXX -> UTF-8, no streaming, objects preserve insertion order (which
// makes responses deterministic and tests byte-stable).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcolor::serve {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}    // NOLINT
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}    // NOLINT
  JsonValue(std::string s)                                     // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  /// Parses exactly one JSON value spanning all of `text` (leading and
  /// trailing whitespace allowed, anything else after the value throws).
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Typed reads; throw CheckError (naming `what`) on kind mismatch.
  bool as_bool(std::string_view what = "value") const;
  std::int64_t as_int(std::string_view what = "value") const;
  double as_double(std::string_view what = "value") const;
  const std::string& as_string(std::string_view what = "value") const;
  const std::vector<JsonValue>& as_array(std::string_view what = "value") const;

  // ---- object access ----------------------------------------------------

  /// Member lookup; nullptr when absent (or when this is not an object).
  const JsonValue* get(std::string_view key) const;

  /// Required member of a request; throws CheckError naming the key.
  const JsonValue& require(std::string_view key) const;

  /// Typed optional reads with defaults (request-parsing convenience).
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  std::string get_string(std::string_view key, std::string fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Sets/overwrites an object member (keeps first-set order).
  JsonValue& set(std::string key, JsonValue value);

  /// Appends an array element.
  JsonValue& push_back(JsonValue value);

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact single-line serialization (doubles via %.17g round-trip).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

}  // namespace dcolor::serve
