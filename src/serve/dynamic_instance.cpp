#include "serve/dynamic_instance.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace dcolor::serve {

DynamicInstance::DynamicInstance(
    NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges,
    int headroom, std::uint64_t seed)
    : headroom_(std::max(0, headroom)), seed_(seed) {
  DCOLOR_CHECK_MSG(num_nodes >= 0, "dynamic instance: negative node count");
  adj_.resize(static_cast<std::size_t>(num_nodes));
  alive_.assign(static_cast<std::size_t>(num_nodes), 1);
  in_dirty_.assign(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& [u, v] : edges) {
    DCOLOR_CHECK_MSG(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes,
                     "dynamic instance: edge (" << u << ", " << v
                                                << ") out of range");
    if (u == v) continue;
    auto& au = adj_[static_cast<std::size_t>(u)];
    const auto it = std::lower_bound(au.begin(), au.end(), v);
    if (it != au.end() && *it == v) continue;  // duplicate
    au.insert(it, v);
    auto& av = adj_[static_cast<std::size_t>(v)];
    av.insert(std::lower_bound(av.begin(), av.end(), u), u);
    ++num_edges_;
  }
  int max_deg = 0;
  for (const auto& a : adj_) {
    max_deg = std::max(max_deg, static_cast<int>(a.size()));
  }
  color_space_ = std::max<std::int64_t>(64, 4 * (max_deg + 1 + headroom_));
  lists_.resize(static_cast<std::size_t>(num_nodes));
  for (NodeId v = 0; v < num_nodes; ++v) {
    regrow_list(v, adj_[static_cast<std::size_t>(v)].size() + 1 +
                       static_cast<std::size_t>(headroom_));
  }
}

void DynamicInstance::regrow_list(NodeId v, std::size_t min_size) {
  while (static_cast<std::int64_t>(min_size) > color_space_) {
    color_space_ *= 2;
  }
  // Deterministic per-node stream: the same (seed, v, color_space, size)
  // always yields the same list, independent of mutation interleaving.
  Rng rng = Rng::stream(seed_, static_cast<std::uint64_t>(v));
  std::vector<Color> colors;
  colors.reserve(min_size);
  std::vector<char> taken(static_cast<std::size_t>(color_space_), 0);
  while (colors.size() < min_size) {
    const auto c = static_cast<Color>(
        rng.below(static_cast<std::uint64_t>(color_space_)));
    if (taken[static_cast<std::size_t>(c)]) continue;
    taken[static_cast<std::size_t>(c)] = 1;
    colors.push_back(c);
  }
  lists_.set_node(static_cast<std::size_t>(v),
                  ColorList::zero_defect(std::move(colors)));
}

void DynamicInstance::mark_dirty(NodeId v) {
  if (in_dirty_[static_cast<std::size_t>(v)]) return;
  in_dirty_[static_cast<std::size_t>(v)] = 1;
  dirty_.push_back(v);
}

bool DynamicInstance::add_edge(NodeId u, NodeId v) {
  DCOLOR_CHECK_MSG(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
                   "add_edge: (" << u << ", " << v << ") out of range");
  DCOLOR_CHECK_MSG(alive(u) && alive(v),
                   "add_edge: endpoint was removed");
  if (u == v) return false;
  auto& au = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return false;
  au.insert(it, v);
  auto& av = adj_[static_cast<std::size_t>(v)];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++num_edges_;
  for (const NodeId w : {u, v}) {
    const auto need = adj_[static_cast<std::size_t>(w)].size() + 1;
    if (lists_[static_cast<std::size_t>(w)].size() < need) {
      regrow_list(w, need + static_cast<std::size_t>(headroom_));
    }
    mark_dirty(w);
  }
  return true;
}

bool DynamicInstance::remove_edge(NodeId u, NodeId v) {
  DCOLOR_CHECK_MSG(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
                   "remove_edge: (" << u << ", " << v << ") out of range");
  auto& au = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it == au.end() || *it != v) return false;
  au.erase(it);
  auto& av = adj_[static_cast<std::size_t>(v)];
  av.erase(std::lower_bound(av.begin(), av.end(), u));
  --num_edges_;
  // Dropping a constraint cannot invalidate a zero-defect coloring: no
  // new dirt.
  return true;
}

NodeId DynamicInstance::add_node() {
  const NodeId v = num_nodes();
  adj_.emplace_back();
  alive_.push_back(1);
  in_dirty_.push_back(0);
  lists_.resize(static_cast<std::size_t>(v) + 1);
  regrow_list(v, 1 + static_cast<std::size_t>(headroom_));
  if (has_coloring()) {
    // Isolated: any list color is valid immediately.
    colors_.push_back(lists_[static_cast<std::size_t>(v)].color(0));
  }
  return v;
}

bool DynamicInstance::remove_node(NodeId v) {
  DCOLOR_CHECK_MSG(v >= 0 && v < num_nodes(),
                   "remove_node: " << v << " out of range");
  if (!alive(v)) return false;
  auto& av = adj_[static_cast<std::size_t>(v)];
  for (const NodeId u : av) {
    auto& au = adj_[static_cast<std::size_t>(u)];
    au.erase(std::lower_bound(au.begin(), au.end(), v));
  }
  num_edges_ -= static_cast<std::int64_t>(av.size());
  av.clear();
  alive_[static_cast<std::size_t>(v)] = 0;
  // The slot stays (stable ids), isolated with a singleton list so every
  // downstream pass can keep treating the node uniformly.
  regrow_list(v, 1);
  if (has_coloring()) {
    colors_[static_cast<std::size_t>(v)] =
        lists_[static_cast<std::size_t>(v)].color(0);
  }
  return true;
}

std::vector<NodeId> DynamicInstance::dirty() const {
  std::vector<NodeId> out = dirty_;
  std::sort(out.begin(), out.end());
  return out;
}

void DynamicInstance::set_colors(std::vector<Color> colors) {
  DCOLOR_CHECK_MSG(colors.size() == static_cast<std::size_t>(num_nodes()),
                   "set_colors: expected " << num_nodes() << " colors, got "
                                           << colors.size());
  colors_ = std::move(colors);
  dirty_.clear();
  std::fill(in_dirty_.begin(), in_dirty_.end(), 0);
}

RecolorResult DynamicInstance::recolor(RunContext& ctx,
                                       const RecolorOptions& options) {
  DCOLOR_CHECK_MSG(has_coloring(),
                   "recolor: session has no coloring yet; solve first");
  RecolorProblem problem;
  problem.num_nodes = num_nodes();
  problem.neighbors = [this](NodeId v) { return neighbors(v); };
  problem.lists = &lists_;
  problem.color_space = color_space_;
  problem.symmetric = true;
  RecolorResult result =
      recolor_dirty(problem, colors_, dirty_, ctx, options);
  colors_ = result.colors;
  dirty_.clear();
  std::fill(in_dirty_.begin(), in_dirty_.end(), 0);
  return result;
}

Graph DynamicInstance::materialize() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges_));
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const NodeId u : adj_[static_cast<std::size_t>(v)]) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(num_nodes(), std::move(edges));
}

bool DynamicInstance::validate() const {
  if (!has_coloring()) return false;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const Color c = colors_[static_cast<std::size_t>(v)];
    if (c == kNoColor || !lists_[static_cast<std::size_t>(v)].contains(c)) {
      return false;
    }
    for (const NodeId u : adj_[static_cast<std::size_t>(v)]) {
      if (colors_[static_cast<std::size_t>(u)] == c) return false;
    }
  }
  return true;
}

}  // namespace dcolor::serve
