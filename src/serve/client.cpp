#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace dcolor::serve {

Client::Client(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DCOLOR_CHECK_MSG(fd_ >= 0, "client: socket() failed: "
                                 << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    DCOLOR_CHECK_MSG(false, "client: cannot connect to 127.0.0.1:"
                                << port << ": " << std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_line() {
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    DCOLOR_CHECK_MSG(n > 0, "client: connection closed before a response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  return line;
}

bool Client::is_event_line(const std::string& line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    return v.is_object() && v.get("event") != nullptr;
  } catch (const std::exception&) {
    return false;  // not JSON — let the caller's parse report it
  }
}

std::string Client::call_line(const std::string& line) {
  return call_line(line, nullptr);
}

std::string Client::call_line(
    const std::string& line,
    const std::function<void(const std::string&)>& on_event) {
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    DCOLOR_CHECK_MSG(n > 0, "client: connection lost while sending");
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    std::string received = read_line();
    if (is_event_line(received)) {
      if (on_event) on_event(received);
      continue;
    }
    return received;
  }
}

std::string Client::wait_line() { return read_line(); }

JsonValue Client::call(const JsonValue& request) {
  return JsonValue::parse(call_line(request.dump(), nullptr));
}

JsonValue Client::call(
    const JsonValue& request,
    const std::function<void(const std::string&)>& on_event) {
  return JsonValue::parse(call_line(request.dump(), on_event));
}

}  // namespace dcolor::serve
