file(REMOVE_RECURSE
  "CMakeFiles/edge_coloring.dir/edge_coloring.cpp.o"
  "CMakeFiles/edge_coloring.dir/edge_coloring.cpp.o.d"
  "edge_coloring"
  "edge_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
