# Empty compiler generated dependencies file for edge_coloring.
# This may be replaced when dependencies are built.
