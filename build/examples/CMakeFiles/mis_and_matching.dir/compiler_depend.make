# Empty compiler generated dependencies file for mis_and_matching.
# This may be replaced when dependencies are built.
