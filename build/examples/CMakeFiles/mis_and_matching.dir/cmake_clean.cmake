file(REMOVE_RECURSE
  "CMakeFiles/mis_and_matching.dir/mis_and_matching.cpp.o"
  "CMakeFiles/mis_and_matching.dir/mis_and_matching.cpp.o.d"
  "mis_and_matching"
  "mis_and_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_and_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
