file(REMOVE_RECURSE
  "CMakeFiles/congest_delta_plus_one.dir/congest_delta_plus_one.cpp.o"
  "CMakeFiles/congest_delta_plus_one.dir/congest_delta_plus_one.cpp.o.d"
  "congest_delta_plus_one"
  "congest_delta_plus_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_delta_plus_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
