file(REMOVE_RECURSE
  "CMakeFiles/frequency_assignment.dir/frequency_assignment.cpp.o"
  "CMakeFiles/frequency_assignment.dir/frequency_assignment.cpp.o.d"
  "frequency_assignment"
  "frequency_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
