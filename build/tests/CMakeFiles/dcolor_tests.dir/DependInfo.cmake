
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_api_surface.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_api_surface.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_api_surface.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_color_reduction.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_color_reduction.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_color_reduction.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_congest.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_congest.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_congest.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_exhaustive_small.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_exhaustive_small.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_exhaustive_small.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_algorithms.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_graph_algorithms.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_graph_algorithms.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_mis.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_mis.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_mis.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_substrate.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_substrate.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_substrate.cpp.o.d"
  "/root/repo/tests/test_theta.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_theta.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_theta.cpp.o.d"
  "/root/repo/tests/test_two_sweep.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_two_sweep.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_two_sweep.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/dcolor_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/dcolor_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcolor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
