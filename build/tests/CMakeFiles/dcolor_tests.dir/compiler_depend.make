# Empty compiler generated dependencies file for dcolor_tests.
# This may be replaced when dependencies are built.
