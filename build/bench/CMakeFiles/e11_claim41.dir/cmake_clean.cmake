file(REMOVE_RECURSE
  "CMakeFiles/e11_claim41.dir/e11_claim41.cpp.o"
  "CMakeFiles/e11_claim41.dir/e11_claim41.cpp.o.d"
  "e11_claim41"
  "e11_claim41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_claim41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
