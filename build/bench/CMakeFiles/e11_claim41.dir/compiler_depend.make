# Empty compiler generated dependencies file for e11_claim41.
# This may be replaced when dependencies are built.
