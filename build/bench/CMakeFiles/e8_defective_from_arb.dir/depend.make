# Empty dependencies file for e8_defective_from_arb.
# This may be replaced when dependencies are built.
