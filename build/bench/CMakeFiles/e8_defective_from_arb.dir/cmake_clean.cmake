file(REMOVE_RECURSE
  "CMakeFiles/e8_defective_from_arb.dir/e8_defective_from_arb.cpp.o"
  "CMakeFiles/e8_defective_from_arb.dir/e8_defective_from_arb.cpp.o.d"
  "e8_defective_from_arb"
  "e8_defective_from_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_defective_from_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
