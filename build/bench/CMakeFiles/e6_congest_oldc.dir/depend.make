# Empty dependencies file for e6_congest_oldc.
# This may be replaced when dependencies are built.
