file(REMOVE_RECURSE
  "CMakeFiles/e6_congest_oldc.dir/e6_congest_oldc.cpp.o"
  "CMakeFiles/e6_congest_oldc.dir/e6_congest_oldc.cpp.o.d"
  "e6_congest_oldc"
  "e6_congest_oldc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_congest_oldc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
