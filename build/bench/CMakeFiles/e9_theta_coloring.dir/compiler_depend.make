# Empty compiler generated dependencies file for e9_theta_coloring.
# This may be replaced when dependencies are built.
