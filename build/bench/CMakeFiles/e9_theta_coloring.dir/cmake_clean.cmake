file(REMOVE_RECURSE
  "CMakeFiles/e9_theta_coloring.dir/e9_theta_coloring.cpp.o"
  "CMakeFiles/e9_theta_coloring.dir/e9_theta_coloring.cpp.o.d"
  "e9_theta_coloring"
  "e9_theta_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_theta_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
