file(REMOVE_RECURSE
  "CMakeFiles/e2_fast_two_sweep.dir/e2_fast_two_sweep.cpp.o"
  "CMakeFiles/e2_fast_two_sweep.dir/e2_fast_two_sweep.cpp.o.d"
  "e2_fast_two_sweep"
  "e2_fast_two_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_fast_two_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
