# Empty dependencies file for e2_fast_two_sweep.
# This may be replaced when dependencies are built.
