file(REMOVE_RECURSE
  "CMakeFiles/e7_delta_plus_one.dir/e7_delta_plus_one.cpp.o"
  "CMakeFiles/e7_delta_plus_one.dir/e7_delta_plus_one.cpp.o.d"
  "e7_delta_plus_one"
  "e7_delta_plus_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_delta_plus_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
