# Empty compiler generated dependencies file for e7_delta_plus_one.
# This may be replaced when dependencies are built.
