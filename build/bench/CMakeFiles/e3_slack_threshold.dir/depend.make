# Empty dependencies file for e3_slack_threshold.
# This may be replaced when dependencies are built.
