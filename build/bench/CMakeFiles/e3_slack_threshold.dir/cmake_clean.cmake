file(REMOVE_RECURSE
  "CMakeFiles/e3_slack_threshold.dir/e3_slack_threshold.cpp.o"
  "CMakeFiles/e3_slack_threshold.dir/e3_slack_threshold.cpp.o.d"
  "e3_slack_threshold"
  "e3_slack_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_slack_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
