# Empty compiler generated dependencies file for e1_two_sweep_rounds.
# This may be replaced when dependencies are built.
