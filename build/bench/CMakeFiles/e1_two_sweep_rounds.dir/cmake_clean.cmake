file(REMOVE_RECURSE
  "CMakeFiles/e1_two_sweep_rounds.dir/e1_two_sweep_rounds.cpp.o"
  "CMakeFiles/e1_two_sweep_rounds.dir/e1_two_sweep_rounds.cpp.o.d"
  "e1_two_sweep_rounds"
  "e1_two_sweep_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_two_sweep_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
