# Empty dependencies file for e5_node_compute.
# This may be replaced when dependencies are built.
