file(REMOVE_RECURSE
  "CMakeFiles/e5_node_compute.dir/e5_node_compute.cpp.o"
  "CMakeFiles/e5_node_compute.dir/e5_node_compute.cpp.o.d"
  "e5_node_compute"
  "e5_node_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_node_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
