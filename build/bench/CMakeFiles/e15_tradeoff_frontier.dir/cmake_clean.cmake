file(REMOVE_RECURSE
  "CMakeFiles/e15_tradeoff_frontier.dir/e15_tradeoff_frontier.cpp.o"
  "CMakeFiles/e15_tradeoff_frontier.dir/e15_tradeoff_frontier.cpp.o.d"
  "e15_tradeoff_frontier"
  "e15_tradeoff_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_tradeoff_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
