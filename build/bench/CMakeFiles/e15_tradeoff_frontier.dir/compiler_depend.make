# Empty compiler generated dependencies file for e15_tradeoff_frontier.
# This may be replaced when dependencies are built.
