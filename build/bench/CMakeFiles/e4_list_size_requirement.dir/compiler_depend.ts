# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e4_list_size_requirement.
