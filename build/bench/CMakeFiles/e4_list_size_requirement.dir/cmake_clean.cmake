file(REMOVE_RECURSE
  "CMakeFiles/e4_list_size_requirement.dir/e4_list_size_requirement.cpp.o"
  "CMakeFiles/e4_list_size_requirement.dir/e4_list_size_requirement.cpp.o.d"
  "e4_list_size_requirement"
  "e4_list_size_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_list_size_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
