# Empty compiler generated dependencies file for e4_list_size_requirement.
# This may be replaced when dependencies are built.
