file(REMOVE_RECURSE
  "CMakeFiles/e13_ablations.dir/e13_ablations.cpp.o"
  "CMakeFiles/e13_ablations.dir/e13_ablations.cpp.o.d"
  "e13_ablations"
  "e13_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
