# Empty dependencies file for e12_edge_coloring.
# This may be replaced when dependencies are built.
