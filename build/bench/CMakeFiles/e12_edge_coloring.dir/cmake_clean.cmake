file(REMOVE_RECURSE
  "CMakeFiles/e12_edge_coloring.dir/e12_edge_coloring.cpp.o"
  "CMakeFiles/e12_edge_coloring.dir/e12_edge_coloring.cpp.o.d"
  "e12_edge_coloring"
  "e12_edge_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_edge_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
