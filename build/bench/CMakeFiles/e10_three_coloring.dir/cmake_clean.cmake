file(REMOVE_RECURSE
  "CMakeFiles/e10_three_coloring.dir/e10_three_coloring.cpp.o"
  "CMakeFiles/e10_three_coloring.dir/e10_three_coloring.cpp.o.d"
  "e10_three_coloring"
  "e10_three_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_three_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
