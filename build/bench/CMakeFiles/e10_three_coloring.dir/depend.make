# Empty dependencies file for e10_three_coloring.
# This may be replaced when dependencies are built.
