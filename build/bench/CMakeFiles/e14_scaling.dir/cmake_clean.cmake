file(REMOVE_RECURSE
  "CMakeFiles/e14_scaling.dir/e14_scaling.cpp.o"
  "CMakeFiles/e14_scaling.dir/e14_scaling.cpp.o.d"
  "e14_scaling"
  "e14_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
