# Empty compiler generated dependencies file for e14_scaling.
# This may be replaced when dependencies are built.
