file(REMOVE_RECURSE
  "libdcolor.a"
)
