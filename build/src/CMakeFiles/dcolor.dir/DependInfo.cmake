
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/be09_two_sweep.cpp" "src/CMakeFiles/dcolor.dir/baselines/be09_two_sweep.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/baselines/be09_two_sweep.cpp.o.d"
  "/root/repo/src/baselines/greedy.cpp" "src/CMakeFiles/dcolor.dir/baselines/greedy.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/baselines/greedy.cpp.o.d"
  "/root/repo/src/baselines/luby.cpp" "src/CMakeFiles/dcolor.dir/baselines/luby.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/baselines/luby.cpp.o.d"
  "/root/repo/src/baselines/mt20_style.cpp" "src/CMakeFiles/dcolor.dir/baselines/mt20_style.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/baselines/mt20_style.cpp.o.d"
  "/root/repo/src/baselines/one_sweep_defective.cpp" "src/CMakeFiles/dcolor.dir/baselines/one_sweep_defective.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/baselines/one_sweep_defective.cpp.o.d"
  "/root/repo/src/coloring/arbdefective.cpp" "src/CMakeFiles/dcolor.dir/coloring/arbdefective.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/coloring/arbdefective.cpp.o.d"
  "/root/repo/src/coloring/color_reduction.cpp" "src/CMakeFiles/dcolor.dir/coloring/color_reduction.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/coloring/color_reduction.cpp.o.d"
  "/root/repo/src/coloring/kuhn_defective.cpp" "src/CMakeFiles/dcolor.dir/coloring/kuhn_defective.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/coloring/kuhn_defective.cpp.o.d"
  "/root/repo/src/coloring/linial.cpp" "src/CMakeFiles/dcolor.dir/coloring/linial.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/coloring/linial.cpp.o.d"
  "/root/repo/src/core/color_space_reduction.cpp" "src/CMakeFiles/dcolor.dir/core/color_space_reduction.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/color_space_reduction.cpp.o.d"
  "/root/repo/src/core/congest_oldc.cpp" "src/CMakeFiles/dcolor.dir/core/congest_oldc.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/congest_oldc.cpp.o.d"
  "/root/repo/src/core/defective_from_arbdefective.cpp" "src/CMakeFiles/dcolor.dir/core/defective_from_arbdefective.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/defective_from_arbdefective.cpp.o.d"
  "/root/repo/src/core/edge_coloring.cpp" "src/CMakeFiles/dcolor.dir/core/edge_coloring.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/edge_coloring.cpp.o.d"
  "/root/repo/src/core/fast_two_sweep.cpp" "src/CMakeFiles/dcolor.dir/core/fast_two_sweep.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/fast_two_sweep.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/dcolor.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/list_coloring.cpp" "src/CMakeFiles/dcolor.dir/core/list_coloring.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/list_coloring.cpp.o.d"
  "/root/repo/src/core/mis.cpp" "src/CMakeFiles/dcolor.dir/core/mis.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/mis.cpp.o.d"
  "/root/repo/src/core/slack_reduction.cpp" "src/CMakeFiles/dcolor.dir/core/slack_reduction.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/slack_reduction.cpp.o.d"
  "/root/repo/src/core/theta_color_space.cpp" "src/CMakeFiles/dcolor.dir/core/theta_color_space.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/theta_color_space.cpp.o.d"
  "/root/repo/src/core/theta_coloring.cpp" "src/CMakeFiles/dcolor.dir/core/theta_coloring.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/theta_coloring.cpp.o.d"
  "/root/repo/src/core/two_sweep.cpp" "src/CMakeFiles/dcolor.dir/core/two_sweep.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/core/two_sweep.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/dcolor.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/coloring_checks.cpp" "src/CMakeFiles/dcolor.dir/graph/coloring_checks.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/coloring_checks.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/dcolor.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/dcolor.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hypergraph.cpp" "src/CMakeFiles/dcolor.dir/graph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/hypergraph.cpp.o.d"
  "/root/repo/src/graph/independence.cpp" "src/CMakeFiles/dcolor.dir/graph/independence.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/independence.cpp.o.d"
  "/root/repo/src/graph/line_graph.cpp" "src/CMakeFiles/dcolor.dir/graph/line_graph.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/line_graph.cpp.o.d"
  "/root/repo/src/graph/orientation.cpp" "src/CMakeFiles/dcolor.dir/graph/orientation.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/graph/orientation.cpp.o.d"
  "/root/repo/src/io/dot_export.cpp" "src/CMakeFiles/dcolor.dir/io/dot_export.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/io/dot_export.cpp.o.d"
  "/root/repo/src/io/instance_io.cpp" "src/CMakeFiles/dcolor.dir/io/instance_io.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/io/instance_io.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/dcolor.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/dcolor.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/dcolor.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/sim/network.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/dcolor.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/dcolor.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/gf.cpp" "src/CMakeFiles/dcolor.dir/util/gf.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/gf.cpp.o.d"
  "/root/repo/src/util/logstar.cpp" "src/CMakeFiles/dcolor.dir/util/logstar.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/logstar.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/dcolor.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dcolor.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/dcolor.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/dcolor.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
