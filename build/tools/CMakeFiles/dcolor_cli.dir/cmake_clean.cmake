file(REMOVE_RECURSE
  "CMakeFiles/dcolor_cli.dir/dcolor.cpp.o"
  "CMakeFiles/dcolor_cli.dir/dcolor.cpp.o.d"
  "dcolor"
  "dcolor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcolor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
