# Empty dependencies file for dcolor_cli.
# This may be replaced when dependencies are built.
